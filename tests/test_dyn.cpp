/**
 * @file
 * Streaming-update tests (src/dyn/): delta resolution semantics, and the
 * subsystem's headline invariant — an incrementally updated epoch is
 * bit-identical to a from-scratch rebuild over the same final graph, for
 * the adjacency, both aggregation operators, the frozen degree-class
 * split, the shard plan, and the fp32 forward activations, at any
 * thread count and under any batching of the same net delta.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <set>

#include "dyn/dyn_state.hpp"
#include "dyn/incremental_forward.hpp"
#include "nn/graph_context.hpp"
#include "nn/models.hpp"
#include "partition/degree_classes.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"

using namespace gcod;
using namespace gcod::dyn;

namespace {

using EdgeSet = std::set<std::pair<NodeId, NodeId>>;

Graph
graphOf(NodeId n, const EdgeSet &edges)
{
    return Graph(n, {edges.begin(), edges.end()});
}

EdgeSet
edgeSetOf(const Graph &g)
{
    EdgeSet out;
    g.adjacency().forEach([&](NodeId r, NodeId c, float) {
        if (r < c)
            out.insert({r, c});
    });
    return out;
}

Graph
randomGraph(NodeId n, int tries, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<NodeId, NodeId>> es;
    for (int i = 0; i < tries; ++i) {
        NodeId u = NodeId(rng.uniformInt(0, n - 1));
        NodeId v = NodeId(rng.uniformInt(0, n - 1));
        if (u != v)
            es.push_back({u, v});
    }
    return Graph(n, es);
}

void
expectCsrEq(const CsrMatrix &a, const CsrMatrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    EXPECT_EQ(a.indptr(), b.indptr());
    EXPECT_EQ(a.indices(), b.indices());
    ASSERT_EQ(a.values().size(), b.values().size());
    EXPECT_EQ(std::memcmp(a.values().data(), b.values().data(),
                          a.values().size() * sizeof(float)),
              0);
}

void
expectMatrixEq(const Matrix &a, const Matrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    EXPECT_EQ(std::memcmp(a.row(0), b.row(0),
                          size_t(a.size()) * sizeof(float)),
              0);
}

void
expectPlanEq(const shard::ShardPlan &a, const shard::ShardPlan &b)
{
    ASSERT_EQ(a.numShards, b.numShards);
    ASSERT_EQ(a.numNodes, b.numNodes);
    EXPECT_EQ(a.numClasses, b.numClasses);
    EXPECT_EQ(a.shardOf, b.shardOf);
    EXPECT_EQ(a.classOf, b.classOf);
    EXPECT_EQ(a.edgeCut, b.edgeCut);
    EXPECT_EQ(a.edgeCutFraction, b.edgeCutFraction);
    EXPECT_EQ(a.maxImbalance, b.maxImbalance);
    EXPECT_EQ(a.pairRows, b.pairRows);
    ASSERT_EQ(a.shards.size(), b.shards.size());
    for (size_t s = 0; s < a.shards.size(); ++s) {
        EXPECT_EQ(a.shards[s].owned, b.shards[s].owned);
        EXPECT_EQ(a.shards[s].halo, b.shards[s].halo);
        EXPECT_EQ(a.shards[s].localToGlobal, b.shards[s].localToGlobal);
        EXPECT_EQ(a.shards[s].ownedNnz, b.shards[s].ownedNnz);
        EXPECT_EQ(a.shards[s].cutNnz, b.shards[s].cutNnz);
        EXPECT_EQ(a.shards[s].boundaryCount, b.shards[s].boundaryCount);
    }
}

/**
 * Random batch against the ground-truth edge set: mixes inserts of
 * absent pairs (occasionally growing the id space), removes of present
 * pairs, explicit isolated node adds, and full node removals. Mutates
 * @p edges / @p n to the post-batch truth.
 */
GraphDelta
randomDelta(EdgeSet &edges, NodeId &n, Rng &rng)
{
    GraphDelta d;
    int inserts = int(rng.uniformInt(1, 6));
    for (int i = 0; i < inserts; ++i) {
        bool grow = rng.bernoulli(0.2);
        NodeId u = NodeId(rng.uniformInt(0, n - 1));
        NodeId v = grow ? n : NodeId(rng.uniformInt(0, n - 1));
        if (u == v)
            continue;
        if (u > v)
            std::swap(u, v);
        d.insertEdge(u, v);
        edges.insert({u, v});
        n = std::max(n, NodeId(v + 1));
    }
    int removes = int(rng.uniformInt(0, 3));
    for (int i = 0; i < removes && !edges.empty(); ++i) {
        auto it = edges.begin();
        std::advance(it, long(rng.uniformInt(0, int64_t(edges.size()) - 1)));
        d.removeEdge(it->first, it->second);
        edges.erase(it);
    }
    if (rng.bernoulli(0.3)) {
        NodeId iso = n++;
        d.addNode(iso);
    }
    if (rng.bernoulli(0.25)) {
        NodeId victim = NodeId(rng.uniformInt(0, n - 1));
        d.removeNode(victim);
        for (auto it = edges.begin(); it != edges.end();)
            it = (it->first == victim || it->second == victim)
                     ? edges.erase(it)
                     : std::next(it);
    }
    return d;
}

} // namespace

// --------------------------------------------------------- delta resolution
TEST(GraphDelta, SequentialOverrideWithinOneBatch)
{
    Graph g(4, {{0, 1}});
    GraphDelta d;
    d.insertEdge(2, 3);
    d.removeEdge(2, 3); // overrides: never lands
    d.removeEdge(0, 1);
    d.insertEdge(0, 1); // overrides: edge survives
    ResolvedDelta rd = d.resolve(g);
    EXPECT_TRUE(rd.empty());
    EXPECT_EQ(rd.numNodes, 4);
}

TEST(GraphDelta, SelfLoopsAndDuplicatesAreIgnoredAndCounted)
{
    Graph g(3, {{0, 1}});
    GraphDelta d;
    d.insertEdge(2, 2); // self loop
    d.insertEdge(0, 1); // already present
    d.removeEdge(1, 2); // already absent
    ResolvedDelta rd = d.resolve(g);
    EXPECT_TRUE(rd.empty());
    EXPECT_EQ(rd.ignoredOps, 3u);
}

TEST(GraphDelta, RemoveNodeWipesCurrentAndPendingEdges)
{
    Graph g(4, {{0, 1}, {1, 2}});
    GraphDelta d;
    d.insertEdge(1, 3); // pending, wiped below
    d.removeNode(1);
    ResolvedDelta rd = d.resolve(g);
    EXPECT_TRUE(rd.inserts.empty());
    EXPECT_EQ(rd.removes,
              (std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {1, 2}}));
    // The id space still grew to cover node 3 referenced by the insert.
    EXPECT_EQ(rd.numNodes, 4);
}

TEST(GraphDelta, EdgeOpsGrowTheNodeSpace)
{
    Graph g(2, {{0, 1}});
    GraphDelta d;
    d.insertEdge(1, 5);
    ResolvedDelta rd = d.resolve(g);
    EXPECT_EQ(rd.numNodes, 6);
    EXPECT_EQ(rd.inserts,
              (std::vector<std::pair<NodeId, NodeId>>{{1, 5}}));
    // New ids 2..4 materialize as isolated rows and count as touched.
    EXPECT_EQ(rd.touched, (std::vector<NodeId>{1, 2, 3, 4, 5}));
}

// --------------------------------------------------------- dirty regions
TEST(DirtyRegion, OperatorDirtyCoversBothEndpointNeighborhoods)
{
    Graph oldg(5, {{0, 1}, {1, 2}, {3, 4}});
    Graph newg(5, {{0, 1}, {3, 4}}); // removed {1,2}
    DirtyRegion d0 = operatorDirty(oldg, newg, {1, 2});
    // 1, 2 touched; 0 neighbors 1; nothing reaches 3/4.
    EXPECT_EQ(d0.nodes, (std::vector<NodeId>{0, 1, 2}));
    EXPECT_TRUE(d0.contains(0));
    EXPECT_FALSE(d0.contains(3));
    EXPECT_NEAR(d0.fraction(), 3.0 / 5.0, 1e-12);
}

TEST(DirtyRegion, LevelsExpandOneHopPerLayer)
{
    // Path 0-1-2-3-4; touch node 0's edge.
    Graph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
    DirtyRegion d0 = DirtyRegion::of(5, {0, 1});
    std::vector<DirtyRegion> lv = dirtyLevels(d0, g, 3);
    ASSERT_EQ(lv.size(), 3u);
    EXPECT_EQ(lv[0].nodes, (std::vector<NodeId>{0, 1}));
    EXPECT_EQ(lv[1].nodes, (std::vector<NodeId>{0, 1, 2}));
    EXPECT_EQ(lv[2].nodes, (std::vector<NodeId>{0, 1, 2, 3}));
}

// ------------------------------------------------ epoch merge equivalence
TEST(DynamicGraph, EpochsAreBitIdenticalToFromScratchRebuilds)
{
    NodeId n = 30;
    Graph g0 = randomGraph(n, 60, 17);
    EdgeSet edges = edgeSetOf(g0);
    DynamicGraph dg(g0);
    Rng rng(23);
    for (int step = 0; step < 12; ++step) {
        GraphDelta d = randomDelta(edges, n, rng);
        AppliedDelta ad = dg.apply(d);
        EXPECT_EQ(ad.numNodes, n);
        Graph ref = graphOf(n, edges);
        expectCsrEq(dg.current()->adjacency(), ref.adjacency());
        EXPECT_EQ(dg.current()->degrees(), ref.degrees());
    }
    EXPECT_GT(dg.epoch(), 0u);
}

TEST(DynamicGraph, NoopDeltaKeepsTheEpoch)
{
    Graph g0(3, {{0, 1}});
    DynamicGraph dg(g0);
    auto before = dg.current();
    GraphDelta d;
    d.insertEdge(0, 1); // already present
    AppliedDelta ad = dg.apply(d);
    EXPECT_TRUE(ad.noop());
    EXPECT_EQ(dg.epoch(), 0u);
    EXPECT_EQ(dg.current().get(), before.get());
}

// ------------------------------------------- full dyn state equivalence
TEST(DynState, EveryComponentMatchesFromScratchAfterEachBatch)
{
    NodeId n = 60;
    Graph g0 = randomGraph(n, 160, 3);
    EdgeSet edges = edgeSetOf(g0);

    DynStateOptions opts;
    opts.degreeClasses = 2;
    opts.trackShards = true;
    opts.shardOpts.shards = 3;
    opts.shardOpts.partition.seed = 5;
    DynState st(g0, opts);
    std::vector<NodeId> frozen = st.classes().thresholds();

    Rng rng(11);
    for (int step = 0; step < 8; ++step) {
        GraphDelta d = randomDelta(edges, n, rng);
        st.apply(d);
        Graph ref = graphOf(n, edges);

        expectCsrEq(st.graph().adjacency(), ref.adjacency());
        expectCsrEq(st.normalized(), ref.normalizedAdjacency());
        expectCsrEq(st.rowMean(), GraphContext(ref).rowMean());

        DegreeClasses dc = classifyByThresholds(ref, frozen);
        EXPECT_EQ(st.classes().classOf(), dc.classOf);
        EXPECT_EQ(st.classes().classSizes(), dc.classSizes);

        const DynamicShardPlan *dsp = st.shardPlan();
        ASSERT_NE(dsp, nullptr);
        std::vector<int> assign(static_cast<size_t>(n));
        for (NodeId v = 0; v < n; ++v)
            assign[size_t(v)] = dsp->assignOf(v, ref);
        shard::ShardPlan expect =
            shard::derivePlan(ref, 3, dsp->plan().numClasses, assign,
                              dc.classOf);
        expectPlanEq(dsp->plan(), expect);
    }
}

TEST(DynState, BatchingIsPathIndependent)
{
    NodeId n = 40;
    Graph g0 = randomGraph(n, 100, 29);
    EdgeSet edges = edgeSetOf(g0);

    DynStateOptions opts;
    opts.trackShards = true;
    opts.shardOpts.shards = 2;
    opts.shardOpts.partition.seed = 7;
    DynState many(g0, opts);
    DynState one(g0, opts);

    GraphDelta combined;
    Rng rng(31);
    for (int step = 0; step < 5; ++step) {
        GraphDelta d = randomDelta(edges, n, rng);
        for (const DeltaOp &op : d.ops())
            switch (op.kind) {
            case DeltaOp::InsertEdge: combined.insertEdge(op.u, op.v); break;
            case DeltaOp::RemoveEdge: combined.removeEdge(op.u, op.v); break;
            case DeltaOp::AddNode: combined.addNode(op.u); break;
            case DeltaOp::RemoveNode: combined.removeNode(op.u); break;
            }
        many.apply(d);
    }
    one.apply(combined);

    expectCsrEq(many.graph().adjacency(), one.graph().adjacency());
    expectCsrEq(many.normalized(), one.normalized());
    expectCsrEq(many.rowMean(), one.rowMean());
    EXPECT_EQ(many.classes().classOf(), one.classes().classOf());
    expectPlanEq(many.shardPlan()->plan(), one.shardPlan()->plan());
}

TEST(DynamicShardPlan, ImbalanceBoundForcesARebaseOntoAFreshPartition)
{
    Graph g0 = randomGraph(40, 90, 9);
    shard::ShardPlanOptions so;
    so.shards = 2;
    so.partition.seed = 3;
    DynamicShardPlan dsp(g0, so, /*rebase_imbalance=*/1.05);
    DynamicClasses cls(g0, 2);

    // Pile degree-1 leaves onto one hub: the leaves adopt the hub's
    // shard (neighbour-majority rule), so its edge mass runs away until
    // the bound trips.
    GraphDelta d;
    std::vector<NodeId> touched;
    NodeId hub = 0;
    for (NodeId v = 40; v < 80; ++v)
        d.insertEdge(hub, v);
    ResolvedDelta rd = d.resolve(g0);
    Graph g1(mergeAdjacency(g0, rd));
    cls.repair(g1, rd.touched);
    ShardRepairStats stats =
        dsp.repair(g1, rd.touched, cls.classOf(), cls.numClasses());
    EXPECT_TRUE(stats.rebased);
    EXPECT_EQ(dsp.rebases(), 1u);
    expectPlanEq(dsp.plan(), shard::buildShardPlan(g1, so));
}

// -------------------------------------------------- incremental forward
TEST(IncrementalForward, DirtyRowRecomputeIsBitIdenticalAtAnyThreadCount)
{
    struct ThreadGuard
    {
        int saved = currentThreads();
        ~ThreadGuard() { setThreads(saved); }
    } guard;
    NodeId n = 50;
    Graph g0 = randomGraph(n, 140, 41);
    EdgeSet edges = edgeSetOf(g0);

    const int feat = 12, classes = 4;
    Rng wrng(59);
    auto model = makeModel("GCN", feat, classes, false, wrng);
    Matrix x(n, feat);
    Rng xrng(61);
    for (int64_t i = 0; i < x.size(); ++i)
        x.row(0)[i] = float(xrng.normal(0.0, 1.0));

    DynState st(g0, {});
    std::optional<GraphContext> ctx;
    ctx.emplace(st.graph(), st.normalized(), st.rowMean());
    ForwardRecipe recipe = forwardRecipeFor(*model, *ctx);
    IncrementalForward fwd = IncrementalForward::fromScratch(recipe, x);
    expectMatrixEq(fwd.logits(), referenceForward(recipe, x));

    Rng rng(67);
    for (int step = 0; step < 4; ++step) {
        // Edge churn only: the feature matrix stays fixed.
        GraphDelta d;
        for (int i = 0; i < 4; ++i) {
            NodeId u = NodeId(rng.uniformInt(0, n - 1));
            NodeId v = NodeId(rng.uniformInt(0, n - 1));
            if (u == v)
                continue;
            if (u > v)
                std::swap(u, v);
            if (edges.count({u, v})) {
                d.removeEdge(u, v);
                edges.erase({u, v});
            } else {
                d.insertEdge(u, v);
                edges.insert({u, v});
            }
        }
        DynUpdateStats us = st.apply(d);
        if (us.applied.noop())
            continue;
        ctx.emplace(st.graph(), st.normalized(), st.rowMean());
        recipe = forwardRecipeFor(*model, *ctx);
        std::vector<DirtyRegion> levels = dirtyLevels(
            us.dirty, st.graph(), int(recipe.spec->layers.size()));
        fwd = fwd.applied(recipe, x, levels);
        EXPECT_LT(fwd.lastDirtyRows(),
                  size_t(n) * recipe.spec->layers.size());

        for (int threads : {1, 3}) {
            setThreads(threads);
            expectMatrixEq(fwd.logits(), referenceForward(recipe, x));
        }
    }
}

TEST(IncrementalForward, NodeGrowthRecomputesNewRows)
{
    NodeId n = 20;
    Graph g0 = randomGraph(n, 50, 71);
    const int feat = 8, classes = 3;
    Rng wrng(73);
    auto model = makeModel("GCN", feat, classes, false, wrng);
    Matrix x0(n, feat);
    Rng xrng(79);
    for (int64_t i = 0; i < x0.size(); ++i)
        x0.row(0)[i] = float(xrng.normal(0.0, 1.0));

    DynState st(g0, {});
    std::optional<GraphContext> ctx;
    ctx.emplace(st.graph(), st.normalized(), st.rowMean());
    ForwardRecipe recipe = forwardRecipeFor(*model, *ctx);
    IncrementalForward fwd = IncrementalForward::fromScratch(recipe, x0);

    GraphDelta d;
    d.insertEdge(0, n);     // new node with an edge
    d.addNode(NodeId(n + 1)); // isolated new node
    DynUpdateStats us = st.apply(d);
    ASSERT_EQ(st.graph().numNodes(), n + 2);

    Matrix x1(n + 2, feat, 0.0f);
    std::memcpy(x1.row(0), x0.row(0), size_t(x0.size()) * sizeof(float));
    for (NodeId v = n; v < n + 2; ++v)
        for (int j = 0; j < feat; ++j)
            x1(v, j) = float(xrng.normal(0.0, 1.0));

    ctx.emplace(st.graph(), st.normalized(), st.rowMean());
    recipe = forwardRecipeFor(*model, *ctx);
    std::vector<DirtyRegion> levels = dirtyLevels(
        us.dirty, st.graph(), int(recipe.spec->layers.size()));
    fwd = fwd.applied(recipe, x1, levels);
    expectMatrixEq(fwd.logits(), referenceForward(recipe, x1));
}

// Every op-graph family (attention scores, GIN residuals, Max
// aggregation, SAGE self-concat) survives streamed deltas: the per-op
// dirty-row recompute stays bit-identical to a from-scratch pass over
// the updated graph, at any thread count.
class IncrementalZoo : public ::testing::TestWithParam<std::string>
{};

TEST_P(IncrementalZoo, DeltaRecomputeMatchesFromScratch)
{
    const std::string family = GetParam();
    struct ThreadGuard
    {
        int saved = currentThreads();
        ~ThreadGuard() { setThreads(saved); }
    } guard;
    NodeId n = 40;
    Graph g0 = randomGraph(n, 120, 83);
    EdgeSet edges = edgeSetOf(g0);

    const int feat = 10, classes = 4;
    Rng wrng(89);
    auto model = makeModel(family, feat, classes, false, wrng);
    Matrix x(n, feat);
    Rng xrng(97);
    for (int64_t i = 0; i < x.size(); ++i)
        x.row(0)[i] = float(xrng.normal(0.0, 1.0));

    DynState st(g0, {});
    std::optional<GraphContext> ctx;
    ctx.emplace(st.graph(), st.normalized(), st.rowMean());
    ForwardRecipe recipe = forwardRecipeFor(*model, *ctx);
    IncrementalForward fwd = IncrementalForward::fromScratch(recipe, x);
    expectMatrixEq(fwd.logits(), referenceForward(recipe, x));

    Rng rng(101);
    for (int step = 0; step < 3; ++step) {
        GraphDelta d;
        for (int i = 0; i < 3; ++i) {
            NodeId u = NodeId(rng.uniformInt(0, n - 1));
            NodeId v = NodeId(rng.uniformInt(0, n - 1));
            if (u == v)
                continue;
            if (u > v)
                std::swap(u, v);
            if (edges.count({u, v})) {
                d.removeEdge(u, v);
                edges.erase({u, v});
            } else {
                d.insertEdge(u, v);
                edges.insert({u, v});
            }
        }
        DynUpdateStats us = st.apply(d);
        if (us.applied.noop())
            continue;
        ctx.emplace(st.graph(), st.normalized(), st.rowMean());
        recipe = forwardRecipeFor(*model, *ctx);
        std::vector<DirtyRegion> levels = dirtyLevels(
            us.dirty, st.graph(), int(recipe.spec->layers.size()));
        fwd = fwd.applied(recipe, x, levels);

        for (int threads : {1, 3}) {
            setThreads(threads);
            expectMatrixEq(fwd.logits(), referenceForward(recipe, x));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Zoo, IncrementalZoo,
                         ::testing::Values("GraphSAGE", "GAT", "GIN",
                                           "ResGCN"));

// ------------------------------------------------ repaired-operator units
TEST(DynStateOperators, AdoptingContextMatchesDerivingContext)
{
    Graph g = randomGraph(25, 70, 83);
    DynState st(g, {});
    GraphContext derived(g);
    expectCsrEq(st.normalized(), derived.normalized());
    expectCsrEq(st.rowMean(), derived.rowMean());
}
