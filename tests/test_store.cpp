/**
 * @file
 * Persistent artifact store tests: byte-level round trips through the
 * section container, full ArtifactBundle save/load equivalence (weights,
 * features, quantized packs, shard plans, memoized logits), loud
 * failures on every corruption mode (truncation, bad magic, bad CRC,
 * version mismatch), and the engine's warm-start integration.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "serve/engine.hpp"
#include "store/artifact_io.hpp"
#include "store/bytes.hpp"
#include "store/file.hpp"

using namespace gcod;
using namespace gcod::store;
using serve::ArtifactBundle;
using serve::ArtifactKey;

namespace {

/** Fresh per-test scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("gcod_store_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
}

/** A small real bundle with host execution, int8 pack, and shards. */
std::shared_ptr<const ArtifactBundle>
smallBundle(const std::string &model = "GCN")
{
    GcodOptions opts;
    opts.model = model;
    return serve::buildArtifact(
        ArtifactKey{"Cora", model, serve::hashGcodOptions(opts)}, opts,
        /*scale=*/0.25, /*seed=*/7, /*shards=*/2, /*shard_min_nodes=*/1,
        /*quant_bits=*/{8});
}

void
expectMatrixEq(const Matrix &a, const Matrix &b, const char *what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    // vector<float> equality is bitwise here: every value either came
    // through a lossless byte copy or a deterministic integer kernel.
    EXPECT_TRUE(a.data() == b.data()) << what << ": payload differs";
}

} // namespace

// ---------------------------------------------------------------- container
TEST(StoreFileTest, WriterReaderRoundTripWithAlignment)
{
    std::string dir = scratchDir("container");
    std::string path = dir + "/sections.bin";

    std::vector<uint8_t> meta = {1, 2, 3};
    std::vector<uint8_t> pack(1000);
    for (size_t i = 0; i < pack.size(); ++i)
        pack[i] = uint8_t(i * 7);

    StoreWriter w;
    w.addSection(SectionType::Meta, 0, std::vector<uint8_t>(meta));
    w.addSection(SectionType::QuantPack, 8, std::vector<uint8_t>(pack));
    w.write(path);

    StoreReader r(path);
    ASSERT_EQ(r.sections().size(), 2u);
    const Section &m = r.require(SectionType::Meta);
    ASSERT_EQ(m.size, meta.size());
    EXPECT_EQ(std::memcmp(m.data, meta.data(), meta.size()), 0);
    const Section &q = r.require(SectionType::QuantPack, 8);
    ASSERT_EQ(q.size, pack.size());
    EXPECT_EQ(std::memcmp(q.data, pack.data(), pack.size()), 0);

    // Zero-copy: every section points into the mapped (or fallback)
    // image, at the promised 64-byte alignment.
    for (const Section &s : r.sections()) {
        EXPECT_GE(s.data, r.base());
        EXPECT_LE(s.data + s.size, r.base() + r.fileSize());
        EXPECT_EQ((s.data - r.base()) % int64_t(kSectionAlign), 0);
    }
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(r.mapped());
#endif

    EXPECT_EQ(r.find(SectionType::Logits), nullptr);
    EXPECT_THROW(r.require(SectionType::Logits), std::runtime_error);
}

TEST(StoreFileTest, ByteCursorBoundsAreEnforced)
{
    ByteWriter w;
    w.put<uint32_t>(5);
    w.putString("hello");
    std::vector<uint8_t> bytes = w.take();

    ByteCursor c(bytes.data(), bytes.size(), "test");
    EXPECT_EQ(c.get<uint32_t>(), 5u);
    EXPECT_EQ(c.getString(), "hello");
    EXPECT_NO_THROW(c.expectEnd());
    EXPECT_THROW(c.get<uint64_t>(), std::runtime_error);

    // A length prefix larger than the remaining payload must not be
    // trusted (this is what makes truncation loud instead of UB).
    ByteWriter w2;
    w2.put<uint64_t>(uint64_t(1) << 60);
    std::vector<uint8_t> evil = w2.take();
    ByteCursor c2(evil.data(), evil.size(), "test");
    EXPECT_THROW(c2.getVector<float>(), std::runtime_error);
}

// ------------------------------------------------------------- corruption
TEST(StoreFileTest, CorruptionFailsLoudly)
{
    std::string dir = scratchDir("corruption");
    std::string path = dir + "/artifact.bin";
    saveArtifactBundle(path, *smallBundle());
    std::vector<uint8_t> good = readFile(path);
    ASSERT_GT(good.size(), sizeof(FileHeader) + 256);

    // Missing file.
    EXPECT_THROW(loadArtifactBundle(dir + "/nope.bin"),
                 std::runtime_error);

    // Truncated to half: header fileSize no longer matches.
    std::vector<uint8_t> truncated(good.begin(),
                                   good.begin() + good.size() / 2);
    writeFile(path, truncated);
    EXPECT_THROW(loadArtifactBundle(path), std::runtime_error);

    // Bad magic.
    std::vector<uint8_t> badMagic = good;
    badMagic[0] ^= 0xFF;
    writeFile(path, badMagic);
    EXPECT_THROW(loadArtifactBundle(path), std::runtime_error);

    // Future format version (bytes 8..11 hold the version field).
    std::vector<uint8_t> badVersion = good;
    uint32_t v = 0xFFFF;
    std::memcpy(badVersion.data() + 8, &v, sizeof(v));
    writeFile(path, badVersion);
    EXPECT_THROW(loadArtifactBundle(path), std::runtime_error);

    // One flipped payload byte: the section CRC must catch it. Locate a
    // real payload byte through the reader (the file tail may be
    // alignment padding, which no checksum covers).
    writeFile(path, good);
    size_t payloadByte = 0;
    {
        StoreReader r(path);
        const Section &s = r.sections().back();
        payloadByte = size_t(s.data - r.base()) + s.size / 2;
    }
    std::vector<uint8_t> badCrc = good;
    badCrc[payloadByte] ^= 0x01;
    writeFile(path, badCrc);
    EXPECT_THROW(loadArtifactBundle(path), std::runtime_error);

    // Untouched original still loads after all that abuse.
    writeFile(path, good);
    EXPECT_NO_THROW(loadArtifactBundle(path));
}

TEST(StoreFileTest, DegenerateFilesFailCleanlyNotCatastrophically)
{
    std::string dir = scratchDir("degenerate");

    // Zero-length file: smaller than the header, clean runtime_error
    // (not a wild read or an escaping bad_alloc).
    std::string empty = dir + "/empty.bin";
    writeFile(empty, {});
    EXPECT_THROW(StoreReader r(empty), std::runtime_error);

    // Header claims more sections than the file can possibly hold: the
    // table-bounds check fires before anything reads past the end. The
    // count stays under kMaxSections so this exercises the bounds check,
    // not the count cap.
    std::string inflated = dir + "/inflated.bin";
    {
        FileHeader h;
        h.sectionCount = kMaxSections - 1;
        h.fileSize = sizeof(FileHeader);
        std::vector<uint8_t> raw(sizeof(FileHeader));
        std::memcpy(raw.data(), &h, sizeof(h));
        writeFile(inflated, raw);
    }
    EXPECT_THROW(StoreReader r(inflated), std::runtime_error);

    // Truncation mid-section-table: header promises two entries but the
    // file ends halfway through the first.
    std::string cut = dir + "/cut_table.bin";
    {
        FileHeader h;
        h.sectionCount = 2;
        h.fileSize = sizeof(FileHeader) + sizeof(SectionEntry) / 2;
        std::vector<uint8_t> raw(size_t(h.fileSize));
        std::memcpy(raw.data(), &h, sizeof(h));
        writeFile(cut, raw);
    }
    EXPECT_THROW(StoreReader r(cut), std::runtime_error);
}

TEST(StoreFileTest, QuarantineMovesTheFileAside)
{
    std::string dir = scratchDir("quarantine");
    std::string path = dir + "/bad.bin";
    writeFile(path, {1, 2, 3});

    EXPECT_TRUE(quarantineFile(path));
    EXPECT_FALSE(fileExists(path));
    ASSERT_TRUE(fileExists(quarantinePath(path)));

    // Repeated corruption of the same key: the newest bad bytes replace
    // the previous quarantine file instead of erroring out.
    writeFile(path, {4, 5, 6});
    EXPECT_TRUE(quarantineFile(path));
    EXPECT_FALSE(fileExists(path));
    EXPECT_EQ(readFile(quarantinePath(path)),
              (std::vector<uint8_t>{4, 5, 6}));

    // Quarantining a missing file: the contract is "path no longer
    // exists afterwards", which a never-existing file satisfies.
    EXPECT_TRUE(quarantineFile(dir + "/never_existed.bin"));
}

// -------------------------------------------------------------- round trip
TEST(StoreArtifactTest, BundleRoundTripIsEquivalentForServing)
{
    std::string dir = scratchDir("roundtrip");
    std::shared_ptr<const ArtifactBundle> built = smallBundle();
    std::string path = artifactStorePath(dir, built->key);

    std::map<int, Matrix> memo;
    memo.emplace(32, referenceForward(built->hostRecipe,
                                      built->hostFeatures));
    saveArtifactBundle(path, *built, ReorderOptions{}, memo);
    LoadedArtifact loaded = loadArtifactBundle(path);
    const ArtifactBundle &b = *loaded.bundle;

    EXPECT_EQ(b.key, built->key);
    EXPECT_DOUBLE_EQ(b.scaleUsed, built->scaleUsed);
    EXPECT_GT(loaded.loadSeconds, 0.0);
    EXPECT_DOUBLE_EQ(b.buildSeconds, loaded.loadSeconds);

    // Profiles and processed graph.
    EXPECT_EQ(b.profile.nodes, built->profile.nodes);
    EXPECT_EQ(b.synth.graph.numNodes(), built->synth.graph.numNodes());
    EXPECT_EQ(b.outcome.finalGraph.adjacency().nnz(),
              built->outcome.finalGraph.adjacency().nnz());
    EXPECT_EQ(b.outcome.workload.tiles.size(),
              built->outcome.workload.tiles.size());
    EXPECT_EQ(b.gcodIn.adj.nnz, built->gcodIn.adj.nnz);

    // Host execution state: features, weights, and therefore the fp32
    // forward must be bit-identical.
    ASSERT_TRUE(b.hasHostExec());
    expectMatrixEq(b.hostFeatures, built->hostFeatures, "features");
    auto wa = built->hostModel->parameters();
    auto wb = b.hostModel->parameters();
    ASSERT_EQ(wa.size(), wb.size());
    for (size_t i = 0; i < wa.size(); ++i)
        expectMatrixEq(*wb[i], *wa[i], "weights");
    expectMatrixEq(referenceForward(b.hostRecipe, b.hostFeatures),
                   referenceForward(built->hostRecipe,
                                    built->hostFeatures),
                   "fp32 logits");

    // Quantized pack executes bit-identically (integer kernels).
    ASSERT_EQ(b.quantized.count(8), 1u);
    expectMatrixEq(quantizedForwardMixed(b.quantized.at(8),
                                         b.hostFeatures),
                   quantizedForwardMixed(built->quantized.at(8),
                                         built->hostFeatures),
                   "int8 logits");

    // Shard plan and rebuilt executions.
    ASSERT_NE(built->sharded, nullptr);
    ASSERT_NE(b.sharded, nullptr);
    ASSERT_EQ(b.sharded->plan.shards.size(),
              built->sharded->plan.shards.size());
    EXPECT_EQ(b.sharded->plan.edgeCut, built->sharded->plan.edgeCut);
    ASSERT_EQ(b.sharded->units.size(), built->sharded->units.size());
    for (size_t s = 0; s < b.sharded->plan.shards.size(); ++s) {
        EXPECT_EQ(b.sharded->plan.shards[s].owned,
                  built->sharded->plan.shards[s].owned);
        EXPECT_EQ(b.sharded->plan.shards[s].halo,
                  built->sharded->plan.shards[s].halo);
    }
    expectMatrixEq(shard::quantizedShardedForward(b.sharded->plan,
                                                  b.quantized.at(8),
                                                  b.hostFeatures),
                   shard::quantizedShardedForward(built->sharded->plan,
                                                  built->quantized.at(8),
                                                  built->hostFeatures),
                   "sharded int8 logits");

    // Memoized logits handed to save come back as storedLogits.
    ASSERT_EQ(b.storedLogits.count(32), 1u);
    expectMatrixEq(b.storedLogits.at(32), memo.at(32), "stored logits");
}

// --------------------------------------------------------- format versions
TEST(StoreArtifactTest, OpGraphPackRoundTripsInFormatV2)
{
    std::string dir = scratchDir("v2_opgraph");
    std::shared_ptr<const ArtifactBundle> built = smallBundle("GAT");
    std::string path = artifactStorePath(dir, built->key);

    saveArtifactBundle(path, *built);
    {
        StoreReader r(path);
        EXPECT_EQ(r.version(), kFormatVersion);
    }
    LoadedArtifact loaded = loadArtifactBundle(path);
    const ArtifactBundle &b = *loaded.bundle;

    // The attention operator runs interpreted in fp32, so its slot in
    // the pack carries no quantized CSR; v2 must preserve exactly which
    // operators are packed and which are absent.
    ASSERT_EQ(b.quantized.count(8), 1u);
    const QuantizedGnn &q = b.quantized.at(8);
    const QuantizedGnn &q0 = built->quantized.at(8);
    ASSERT_EQ(q.qops.size(), q0.qops.size());
    for (size_t i = 0; i < q.qops.size(); ++i)
        EXPECT_EQ(q.qops[i].pattern != nullptr,
                  q0.qops[i].pattern != nullptr)
            << "operator " << i << " presence";
    expectMatrixEq(quantizedForwardMixed(q, b.hostFeatures),
                   quantizedForwardMixed(q0, built->hostFeatures),
                   "GAT int8 logits");
    expectMatrixEq(referenceForward(b.hostRecipe, b.hostFeatures),
                   referenceForward(built->hostRecipe,
                                    built->hostFeatures),
                   "GAT fp32 logits");
}

TEST(StoreArtifactTest, FormatV1FilesStillLoadAndServeIdentically)
{
    std::string dir = scratchDir("v1_compat");
    std::shared_ptr<const ArtifactBundle> built = smallBundle();
    std::string path = artifactStorePath(dir, built->key);

    // Emit a genuine v1 file: plain-Mean GCN packs are exactly the
    // single-operator shape the old format could carry.
    saveArtifactBundle(path, *built, ReorderOptions{}, {},
                       /*format_version=*/1);
    {
        StoreReader r(path);
        EXPECT_EQ(r.version(), 1u);
    }
    LoadedArtifact loaded = loadArtifactBundle(path);
    const ArtifactBundle &b = *loaded.bundle;
    ASSERT_TRUE(b.hasHostExec());
    ASSERT_EQ(b.quantized.count(8), 1u);
    expectMatrixEq(quantizedForwardMixed(b.quantized.at(8),
                                         b.hostFeatures),
                   quantizedForwardMixed(built->quantized.at(8),
                                         built->hostFeatures),
                   "v1 int8 logits");
    expectMatrixEq(referenceForward(b.hostRecipe, b.hostFeatures),
                   referenceForward(built->hostRecipe,
                                    built->hostFeatures),
                   "v1 fp32 logits");
}

TEST(StoreArtifactTest, FormatV1RefusesOpGraphPacksItCannotRepresent)
{
    std::string dir = scratchDir("v1_reject");
    std::shared_ptr<const ArtifactBundle> built = smallBundle("GAT");
    std::string path = artifactStorePath(dir, built->key);

    // A GAT pack keeps its operator in fp32 (no quantized CSR), which v1
    // cannot encode; the writer must refuse loudly, never misencode.
    EXPECT_THROW(saveArtifactBundle(path, *built, ReorderOptions{}, {},
                                    /*format_version=*/1),
                 std::logic_error);

    // Versions this build does not write are rejected up front.
    EXPECT_THROW(saveArtifactBundle(path, *built, ReorderOptions{}, {},
                                    kFormatVersion + 1),
                 std::runtime_error);
}

// ------------------------------------------------------------- engine warm
TEST(StoreEngineTest, WarmStartLoadsFromStoreAndPredictsIdentically)
{
    std::string dir = scratchDir("warm");
    serve::ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    opts.batching.maxDelay = std::chrono::microseconds(200);
    opts.storeDir = dir;

    std::vector<int> cold;
    ArtifactKey key;
    {
        serve::ServingEngine engine(opts);
        key = engine.keyFor("Cora", "GCN");
        std::vector<std::future<serve::InferenceReply>> futs;
        for (int n = 0; n < 8; ++n)
            futs.push_back(engine.submit({0, "Cora", "GCN", NodeId(n)}));
        engine.drain();
        for (auto &f : futs) {
            serve::InferenceReply r = f.get();
            ASSERT_TRUE(r.ok()) << r.error;
            cold.push_back(r.prediction);
        }
        // The cold build persisted itself; saveArtifact additionally
        // captures the memoized logits for the next process.
        EXPECT_TRUE(fileExists(artifactStorePath(dir, key)));
        EXPECT_TRUE(engine.saveArtifact(key));
    }

    serve::ServingEngine warm(opts);
    std::vector<std::future<serve::InferenceReply>> futs;
    for (int n = 0; n < 8; ++n)
        futs.push_back(warm.submit({0, "Cora", "GCN", NodeId(n)}));
    warm.drain();
    for (int n = 0; n < 8; ++n) {
        serve::InferenceReply r = futs[size_t(n)].get();
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_EQ(r.prediction, cold[size_t(n)]) << "node " << n;
    }
    // The warm engine built nothing: its one miss was a store load.
    EXPECT_EQ(warm.cache().misses(), 1u);
    EXPECT_LT(warm.cache().totalBuildSeconds(), 1.0);
}

TEST(StoreEngineTest, CorruptStoreFileFallsBackToRebuild)
{
    std::string dir = scratchDir("fallback");
    serve::ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    opts.batching.maxDelay = std::chrono::microseconds(200);
    opts.storeDir = dir;

    ArtifactKey key;
    {
        serve::ServingEngine engine(opts);
        key = engine.keyFor("Cora", "GCN");
        engine.submit({0, "Cora", "GCN", 0}).wait_for(
            std::chrono::seconds(0));
        engine.drain();
    }
    std::string path = artifactStorePath(dir, key);
    ASSERT_TRUE(fileExists(path));
    std::vector<uint8_t> bytes = readFile(path);
    bytes[bytes.size() / 2] ^= 0xA5;
    writeFile(path, bytes);

    serve::ServingEngine engine(opts);
    serve::InferenceReply r = engine.submit({0, "Cora", "GCN", 0}).get();
    EXPECT_TRUE(r.ok()) << r.error;
    // The corrupt file was rebuilt and re-saved: loadable again.
    EXPECT_NO_THROW(loadArtifactBundle(path));
}

TEST(StoreEngineTest, CorruptStoreFileIsQuarantinedAndRepublished)
{
    std::string dir = scratchDir("quarantine_engine");
    serve::ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    opts.batching.maxDelay = std::chrono::microseconds(200);
    opts.storeDir = dir;

    ArtifactKey key;
    int coldPrediction = -1;
    {
        serve::ServingEngine engine(opts);
        key = engine.keyFor("Cora", "GCN");
        serve::InferenceReply r =
            engine.submit({0, "Cora", "GCN", 3}).get();
        ASSERT_TRUE(r.ok()) << r.error;
        coldPrediction = r.prediction;
    }
    std::string path = artifactStorePath(dir, key);
    ASSERT_TRUE(fileExists(path));

    // Flip a byte that is provably covered by a section CRC (the file
    // tail may be alignment padding, which no checksum sees).
    std::vector<uint8_t> bytes = readFile(path);
    size_t payloadByte = 0;
    {
        StoreReader r(path);
        const Section &s = r.sections().back();
        payloadByte = size_t(s.data - r.base()) + s.size / 2;
    }
    bytes[payloadByte] ^= 0x40;
    writeFile(path, bytes);

    serve::ServingEngine engine(opts);
    serve::InferenceReply r = engine.submit({0, "Cora", "GCN", 3}).get();
    ASSERT_TRUE(r.ok()) << r.error;
    // Same graph seed + deterministic pipeline: the rebuild must serve
    // the same prediction the store-backed artifact did.
    EXPECT_EQ(r.prediction, coldPrediction);
    // The bad bytes sit in quarantine for forensics; the key's path got
    // a clean re-published file; the stats counted exactly one event.
    ASSERT_TRUE(fileExists(quarantinePath(path)));
    EXPECT_EQ(readFile(quarantinePath(path)), bytes);
    EXPECT_NO_THROW(loadArtifactBundle(path));
    EXPECT_EQ(engine.stats().quarantined(), 1u);
}
