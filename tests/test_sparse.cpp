/**
 * @file
 * Unit and property tests for the sparse matrix containers (COO/CSR/CSC):
 * construction, conversion round-trips, permutation, filtering, and
 * storage accounting.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "graph/sparse.hpp"
#include "sim/rng.hpp"

using namespace gcod;

namespace {

/** 4x4 fixture matrix matching the CSC example in the paper's Fig. 1. */
CsrMatrix
smallMatrix()
{
    CooMatrix coo(4, 4);
    coo.add(0, 1, 1.0f);
    coo.add(1, 0, 1.0f);
    coo.add(1, 2, 1.0f);
    coo.add(2, 0, 1.0f);
    coo.add(2, 3, 1.0f);
    coo.add(3, 1, 1.0f);
    return coo.toCsr();
}

CsrMatrix
randomMatrix(NodeId rows, NodeId cols, int nnz, Rng &rng)
{
    CooMatrix coo(rows, cols);
    for (int i = 0; i < nnz; ++i)
        coo.add(NodeId(rng.uniformInt(0, rows - 1)),
                NodeId(rng.uniformInt(0, cols - 1)),
                float(rng.uniformReal(0.1, 2.0)));
    return coo.toCsr();
}

} // namespace

TEST(Coo, CoalesceSumsDuplicates)
{
    CooMatrix coo(2, 2);
    coo.add(0, 0, 1.0f);
    coo.add(0, 0, 2.0f);
    coo.add(1, 1, 4.0f);
    coo.coalesce();
    EXPECT_EQ(coo.nnz(), 2);
    EXPECT_FLOAT_EQ(coo.entries()[0].value, 3.0f);
}

TEST(Coo, ToCsrSortsWithinRows)
{
    CooMatrix coo(2, 4);
    coo.add(0, 3, 1.0f);
    coo.add(0, 1, 1.0f);
    coo.add(1, 0, 1.0f);
    CsrMatrix m = coo.toCsr();
    EXPECT_EQ(m.indices()[0], 1);
    EXPECT_EQ(m.indices()[1], 3);
    EXPECT_EQ(m.rowNnz(0), 2);
    EXPECT_EQ(m.rowNnz(1), 1);
}

TEST(Coo, OutOfBoundsEntryPanics)
{
    CooMatrix coo(2, 2);
    coo.add(5, 0, 1.0f);
    EXPECT_THROW(coo.toCsr(), std::logic_error);
}

TEST(Csr, ConstructionValidatesShape)
{
    // indptr too short.
    EXPECT_THROW(CsrMatrix(2, 2, {0, 0}, {}, {}), std::logic_error);
    // indices/values mismatch.
    EXPECT_THROW(CsrMatrix(1, 2, {0, 1}, {0}, {}), std::logic_error);
    // non-monotone indptr.
    EXPECT_THROW(CsrMatrix(2, 2, {0, 2, 1}, {0, 1}, {1.f, 1.f}),
                 std::logic_error);
}

TEST(Csr, AtFindsEntriesAndZeros)
{
    CsrMatrix m = smallMatrix();
    EXPECT_FLOAT_EQ(m.at(0, 1), 1.0f);
    EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(m.at(2, 3), 1.0f);
    EXPECT_FLOAT_EQ(m.at(3, 3), 0.0f);
}

TEST(Csr, PaperFig1CscExample)
{
    // The paper's Fig. 1: column offsets [0,2,4,5,6], row indexes
    // [1,2,0,3,1,2] for the 4x4 example adjacency.
    CscMatrix csc = smallMatrix().toCsc();
    std::vector<EdgeOffset> expect_ptr = {0, 2, 4, 5, 6};
    std::vector<NodeId> expect_rows = {1, 2, 0, 3, 1, 2};
    EXPECT_EQ(csc.colptr(), expect_ptr);
    EXPECT_EQ(csc.rowidx(), expect_rows);
}

TEST(Csr, TransposeSwapsCoordinates)
{
    CsrMatrix m = smallMatrix();
    CsrMatrix t = m.transpose();
    m.forEach([&](NodeId r, NodeId c, float v) {
        EXPECT_FLOAT_EQ(t.at(c, r), v);
    });
    EXPECT_EQ(t.nnz(), m.nnz());
}

TEST(Csr, TransposeTwiceIsIdentity)
{
    Rng rng(1);
    CsrMatrix m = randomMatrix(20, 30, 100, rng);
    CsrMatrix tt = m.transpose().transpose();
    EXPECT_EQ(tt.nnz(), m.nnz());
    m.forEach([&](NodeId r, NodeId c, float v) {
        EXPECT_FLOAT_EQ(tt.at(r, c), v);
    });
}

TEST(Csr, CooRoundTrip)
{
    Rng rng(2);
    CsrMatrix m = randomMatrix(15, 15, 60, rng);
    CsrMatrix back = m.toCoo().toCsr();
    EXPECT_EQ(back.nnz(), m.nnz());
    m.forEach([&](NodeId r, NodeId c, float v) {
        EXPECT_FLOAT_EQ(back.at(r, c), v);
    });
}

TEST(Csr, PermutedPreservesEntriesUnderRelabeling)
{
    CsrMatrix m = smallMatrix();
    std::vector<NodeId> perm = {2, 0, 3, 1}; // old -> new
    CsrMatrix p = m.permuted(perm);
    EXPECT_EQ(p.nnz(), m.nnz());
    m.forEach([&](NodeId r, NodeId c, float v) {
        EXPECT_FLOAT_EQ(p.at(perm[size_t(r)], perm[size_t(c)]), v);
    });
}

TEST(Csr, IdentityPermutationIsNoop)
{
    Rng rng(3);
    CsrMatrix m = randomMatrix(10, 10, 30, rng);
    std::vector<NodeId> id(10);
    std::iota(id.begin(), id.end(), 0);
    CsrMatrix p = m.permuted(id);
    m.forEach([&](NodeId r, NodeId c, float v) {
        EXPECT_FLOAT_EQ(p.at(r, c), v);
    });
}

TEST(Csr, FilteredDropsOnlyRejected)
{
    CsrMatrix m = smallMatrix();
    CsrMatrix f = m.filtered(
        [](NodeId r, NodeId, float) { return r != 1; });
    EXPECT_EQ(f.rowNnz(1), 0);
    EXPECT_EQ(f.nnz(), m.nnz() - m.rowNnz(1));
}

TEST(Csr, SparsityMatchesDefinition)
{
    CsrMatrix m = smallMatrix(); // 6 nnz in 16 cells
    EXPECT_NEAR(m.sparsity(), 1.0 - 6.0 / 16.0, 1e-12);
}

TEST(Csr, SymmetryDetection)
{
    CooMatrix coo(3, 3);
    coo.add(0, 1, 1.0f);
    coo.add(1, 0, 1.0f);
    CsrMatrix sym = coo.toCsr();
    EXPECT_TRUE(sym.isSymmetric());
    coo.add(2, 0, 1.0f);
    EXPECT_FALSE(coo.toCsr().isSymmetric());
}

TEST(Csc, ColumnNnzMatchesCsrColumns)
{
    Rng rng(4);
    CsrMatrix m = randomMatrix(25, 18, 120, rng);
    CscMatrix csc = m.toCsc();
    std::vector<EdgeOffset> col_count(18, 0);
    m.forEach([&](NodeId, NodeId c, float) { col_count[size_t(c)] += 1; });
    for (NodeId c = 0; c < 18; ++c)
        EXPECT_EQ(csc.colNnz(c), col_count[size_t(c)]);
}

TEST(Csc, ForEachInColVisitsAllEntries)
{
    CscMatrix csc = smallMatrix().toCsc();
    EdgeOffset visited = 0;
    for (NodeId c = 0; c < csc.cols(); ++c)
        csc.forEachInCol(c, [&](NodeId, float) { ++visited; });
    EXPECT_EQ(visited, csc.nnz());
}

TEST(Storage, CscSmallerThanCooAtLowDensity)
{
    // The sparser branch's motivation: CSC beats COO on index storage.
    EdgeOffset nnz = 1000;
    NodeId cols = 500;
    double csc = double(cols + 1) * 8.0 + double(nnz) * (4.0 + 4.0);
    double coo = cooStorageBytes(nnz);
    EXPECT_LT(csc, coo * 1.05);
}

TEST(Storage, NarrowValuesShrinkFootprint)
{
    EXPECT_LT(cooStorageBytes(100, 32, 8), cooStorageBytes(100, 32, 32));
    EXPECT_LT(csrStorageBytes(10, 100, 32, 8),
              csrStorageBytes(10, 100, 32, 32));
}

// Property sweep: conversions agree across random shapes.
class SparseRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(SparseRoundTrip, CsrCscAgreeEverywhere)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    NodeId n = NodeId(8 + GetParam() * 7);
    CsrMatrix m = randomMatrix(n, n, 4 * n, rng);
    CscMatrix csc = m.toCsc();
    EdgeOffset count = 0;
    for (NodeId c = 0; c < n; ++c) {
        csc.forEachInCol(c, [&](NodeId r, float v) {
            EXPECT_FLOAT_EQ(m.at(r, c), v);
            ++count;
        });
    }
    EXPECT_EQ(count, m.nnz());
}

TEST_P(SparseRoundTrip, PermutationIsBijective)
{
    Rng rng(static_cast<uint64_t>(GetParam()) + 100);
    NodeId n = NodeId(8 + GetParam() * 7);
    CsrMatrix m = randomMatrix(n, n, 4 * n, rng);
    std::vector<NodeId> perm(static_cast<size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    rng.shuffle(perm);
    // Inverse permutation restores the original.
    std::vector<NodeId> inv(static_cast<size_t>(n));
    for (NodeId i = 0; i < n; ++i)
        inv[size_t(perm[size_t(i)])] = i;
    CsrMatrix back = m.permuted(perm).permuted(inv);
    m.forEach([&](NodeId r, NodeId c, float v) {
        EXPECT_FLOAT_EQ(back.at(r, c), v);
    });
}

INSTANTIATE_TEST_SUITE_P(Shapes, SparseRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6));
