/**
 * @file
 * End-to-end integration tests: the full co-design loop (synthesize ->
 * GCoD algorithm -> accelerator simulation) plus cross-run determinism,
 * exercised the way the benches and examples drive the library.
 */
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "accel/registry.hpp"
#include "compress/compress.hpp"
#include "gcod/pipeline.hpp"
#include "nn/trainer.hpp"

using namespace gcod;

TEST(Integration, FullCoDesignLoopOnCora)
{
    Rng rng(100);
    SyntheticGraph synth = synthesize(profileByName("Cora"), 0.3, rng);
    Dataset ds = materialize(synth, rng);

    GcodOptions opts;
    opts.pretrain.epochs = 20;
    opts.retrain.epochs = 20;
    GcodOutcome out = runGcodPipeline(ds, opts);

    // Algorithm side: pruning happened, accuracy survived.
    EXPECT_GT(out.step2PruneRatio, 0.0);
    EXPECT_GT(out.finalAccuracy, 0.4);

    // Hardware side: the processed workload beats the baselines.
    ModelSpec spec = makeModelSpec("GCN", 1433, 7, false);
    GraphInput raw = makeGraphInput(ds.synth.graph.adjacency());
    raw.featureDensity = 0.013;
    GraphInput proc =
        makeGraphInput(out.finalGraph.adjacency(), out.workload);
    proc.featureDensity = 0.013;

    double cpu =
        makeAccelerator("PyG-CPU")->simulate(spec, raw).latencySeconds;
    double awb =
        makeAccelerator("AWB-GCN")->simulate(spec, raw).latencySeconds;
    double gcod =
        makeAccelerator("GCoD")->simulate(spec, proc).latencySeconds;
    EXPECT_GT(cpu / gcod, 100.0);
    EXPECT_GT(awb / gcod, 1.0);
}

TEST(Integration, DeterministicAcrossRuns)
{
    auto run = []() {
        Rng rng(7);
        SyntheticGraph synth = synthesize(profileByName("CiteSeer"), 0.3,
                                          rng);
        GcodOutcome out = runGcodStructureOnly(synth, {});
        ModelSpec spec = makeModelSpec("GCN", 3703, 6, false);
        GraphInput in =
            makeGraphInput(out.finalGraph.adjacency(), out.workload);
        return makeAccelerator("GCoD")->simulate(spec, in).latencySeconds;
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Integration, WorkloadSurvivesPruningConsistency)
{
    // The invariant chain the accelerator depends on: tiles cover, nnz
    // split is exact, and pruning only shrinks counts.
    Rng rng(8);
    SyntheticGraph synth = synthesize(profileByName("Pubmed"), 0.2, rng);
    GcodOutcome out = runGcodStructureOnly(synth, {});
    EXPECT_EQ(out.workload.numNodes, out.workloadAfterReorder.numNodes);
    EXPECT_LE(out.workload.totalNnz, out.workloadAfterReorder.totalNnz);
    EXPECT_EQ(out.workload.tiles.size(),
              out.workloadAfterReorder.tiles.size());
    for (size_t t = 0; t < out.workload.tiles.size(); ++t) {
        EXPECT_EQ(out.workload.tiles[t].begin,
                  out.workloadAfterReorder.tiles[t].begin);
        EXPECT_LE(out.workload.tiles[t].nnz,
                  out.workloadAfterReorder.tiles[t].nnz);
    }
}

TEST(Integration, AllModelsSimulateOnAllPlatformsNell)
{
    Rng rng(9);
    SyntheticGraph synth = synthesize(profileByName("NELL"), 0.05, rng);
    GcodOutcome out = runGcodStructureOnly(synth, {});
    GraphInput raw = makeGraphInput(synth.graph.adjacency());
    raw.publishedNodes = profileByName("NELL").nodes;
    GraphInput proc =
        makeGraphInput(out.finalGraph.adjacency(), out.workload);
    proc.publishedNodes = profileByName("NELL").nodes;

    for (const char *model : {"GCN", "GIN", "GAT", "GraphSAGE", "ResGCN"}) {
        ModelSpec spec = makeModelSpec(model, 5414, 210, true);
        for (const auto &platform : allPlatformNames()) {
            bool wants_workload = platformConsumesWorkload(platform);
            DetailedResult r = makeAccelerator(platform)->simulate(
                spec, wants_workload ? proc : raw);
            EXPECT_GT(r.latencySeconds, 0.0)
                << model << " on " << platform;
        }
    }
}

TEST(Integration, HyperParameterSweepStaysInPaperBand)
{
    // Condensed version of the Sec. VI-C ablation as a regression test.
    Rng rng(10);
    SyntheticGraph synth = synthesize(profileByName("Cora"), 0.5, rng);
    ModelSpec spec = makeModelSpec("GCN", 1433, 7, false);
    GraphInput raw = makeGraphInput(synth.graph.adjacency());
    raw.featureDensity = 0.013;
    double awb =
        makeAccelerator("AWB-GCN")->simulate(spec, raw).latencySeconds;

    for (int c : {1, 2, 4}) {
        for (int s : {8, 16}) {
            GcodOptions opts;
            opts.reorder.numClasses = c;
            opts.reorder.numSubgraphs = std::max(s, c);
            GcodOutcome out = runGcodStructureOnly(synth, opts);
            GraphInput proc =
                makeGraphInput(out.finalGraph.adjacency(), out.workload);
            proc.featureDensity = 0.013;
            double gcod = makeAccelerator("GCoD")
                              ->simulate(spec, proc)
                              .latencySeconds;
            // Paper band is 1.8-2.8x over AWB-GCN; allow generous slack.
            EXPECT_GT(awb / gcod, 1.0) << "C=" << c << " S=" << s;
            EXPECT_LT(awb / gcod, 12.0) << "C=" << c << " S=" << s;
        }
    }
}
