/**
 * @file
 * Epoch-based artifact hot-swap tests: cache-level publish/retire/
 * reclaim semantics, prediction equivalence across a same-seed swap,
 * and the headline guarantee — swapping under concurrent load drops
 * zero requests and never serves a half-installed artifact.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "serve/engine.hpp"

using namespace gcod;
using namespace gcod::serve;

namespace {

ArtifactKey
key(const std::string &dataset)
{
    return ArtifactKey{dataset, "GCN", 7};
}

ArtifactCache::Builder
fakeBuilder()
{
    return [](const ArtifactKey &k) {
        auto b = std::make_shared<ArtifactBundle>();
        b->key = k;
        b->buildSeconds = 0.001;
        return b;
    };
}

ServeOptions
engineOptions()
{
    ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 2;
    opts.artifactScale = 0.25;
    opts.batching.maxDelay = std::chrono::microseconds(200);
    return opts;
}

} // namespace

// ------------------------------------------------------------- cache level
TEST(HotSwapCacheTest, PublishBumpsVersionAndRetiresOldEpoch)
{
    ArtifactCache cache(4, fakeBuilder());
    ArtifactCache::Lookup first = cache.get(key("Cora"));
    EXPECT_GT(first.version, 0u);
    EXPECT_EQ(cache.residentVersion(key("Cora")), first.version);

    auto fresh = std::make_shared<ArtifactBundle>();
    fresh->key = key("Cora");
    uint64_t v2 = cache.publish(key("Cora"), fresh);
    EXPECT_GT(v2, first.version);
    EXPECT_EQ(cache.residentVersion(key("Cora")), v2);
    EXPECT_EQ(cache.size(), 1u);

    // New lookups see the new epoch; the old one sits retired while we
    // (the in-flight reader) still hold it.
    ArtifactCache::Lookup second = cache.get(key("Cora"));
    EXPECT_EQ(second.bundle.get(), fresh.get());
    EXPECT_EQ(second.version, v2);
    EXPECT_EQ(cache.retiredCount(), 1u);
    EXPECT_EQ(cache.reclaimRetired(), 0u) << "reader still live";

    // Drop our reference: the grace period has elapsed.
    first.bundle.reset();
    EXPECT_EQ(cache.reclaimRetired(), 1u);
    EXPECT_EQ(cache.retiredCount(), 0u);
}

TEST(HotSwapCacheTest, PublishOnAbsentKeyInserts)
{
    ArtifactCache cache(4, fakeBuilder());
    auto b = std::make_shared<ArtifactBundle>();
    b->key = key("CiteSeer");
    uint64_t v = cache.publish(key("CiteSeer"), b);
    EXPECT_GT(v, 0u);
    EXPECT_TRUE(cache.contains(key("CiteSeer")));
    EXPECT_TRUE(cache.get(key("CiteSeer")).hit);
    EXPECT_EQ(cache.retiredCount(), 0u);
}

TEST(HotSwapCacheTest, VersionsAreMonotonicAcrossKeys)
{
    ArtifactCache cache(4, fakeBuilder());
    uint64_t a = cache.get(key("Cora")).version;
    uint64_t b = cache.get(key("CiteSeer")).version;
    auto nb = std::make_shared<ArtifactBundle>();
    nb->key = key("Cora");
    uint64_t c = cache.publish(key("Cora"), nb);
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
}

// ------------------------------------------------------------ engine level
TEST(HotSwapEngineTest, SameSeedPublishKeepsPredictionsIdentical)
{
    ServingEngine engine(engineOptions());
    ArtifactKey k = engine.keyFor("Cora", "GCN");

    auto predict = [&](int node) {
        InferenceReply r =
            engine.submit({0, "Cora", "GCN", NodeId(node)}).get();
        EXPECT_TRUE(r.ok()) << r.error;
        return r.prediction;
    };

    std::vector<int> before;
    for (int n = 0; n < 6; ++n)
        before.push_back(predict(n));
    uint64_t v1 = engine.cache().residentVersion(k);
    ASSERT_GT(v1, 0u);

    // Same options + seed => the rebuilt artifact is semantically
    // identical; the swap must be invisible to clients.
    uint64_t v2 = engine.publishArtifact(k);
    EXPECT_GT(v2, v1);
    EXPECT_EQ(engine.cache().residentVersion(k), v2);
    for (int n = 0; n < 6; ++n)
        EXPECT_EQ(predict(n), before[size_t(n)]) << "node " << n;

    // The replaced epoch drains once no batch references it.
    engine.drain();
    EXPECT_EQ(engine.cache().retiredCount(), 1u);
    EXPECT_EQ(engine.reclaimRetiredArtifacts(), 1u);
    EXPECT_EQ(engine.cache().retiredCount(), 0u);
}

TEST(HotSwapEngineTest, SwapUnderLoadDropsNothing)
{
    ServeOptions opts = engineOptions();
    opts.workers = 4;
    opts.batching.policy = BatchPolicy::Adaptive;
    opts.batching.maxBatch = 8;
    ServingEngine engine(opts);
    ArtifactKey k = engine.keyFor("Cora", "GCN");

    // Warm the artifact so the swap races serving, not the cold build.
    ASSERT_TRUE(engine.submit({0, "Cora", "GCN", 0}).get().ok());

    constexpr int kSubmitters = 3;
    constexpr int kPerThread = 60;
    constexpr int kNodes = 16;
    std::atomic<bool> swapping{true};
    std::mutex futuresMu;
    std::vector<std::future<InferenceReply>> futures;
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t)
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                InferenceRequest req;
                req.dataset = "Cora";
                req.node = NodeId((t * kPerThread + i) % kNodes);
                auto fut = engine.submit(std::move(req));
                std::lock_guard<std::mutex> lock(futuresMu);
                futures.push_back(std::move(fut));
            }
        });

    // Publish repeatedly while the submitters hammer the queue.
    std::thread swapper([&] {
        int swaps = 0;
        while (swapping.load() && swaps < 4) {
            engine.publishArtifact(k);
            ++swaps;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    });

    for (auto &t : submitters)
        t.join();
    engine.drain();
    swapping.store(false);
    swapper.join();
    engine.drain();

    // Zero dropped, zero shed, zero misrouted: every future resolves
    // ok, and every node's prediction is consistent across epochs
    // (same-seed rebuilds are semantically identical).
    std::map<NodeId, int> agreed;
    size_t completed = 0;
    for (auto &f : futures) {
        InferenceReply r = f.get();
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_FALSE(r.shed);
        ++completed;
    }
    EXPECT_EQ(completed, size_t(kSubmitters * kPerThread));
    EXPECT_EQ(engine.stats().shed(), 0u);
    EXPECT_GE(engine.stats().completed(),
              uint64_t(kSubmitters * kPerThread));

    // Node-level consistency probed after the dust settles.
    for (int n = 0; n < kNodes; ++n) {
        InferenceReply r =
            engine.submit({0, "Cora", "GCN", NodeId(n)}).get();
        ASSERT_TRUE(r.ok());
        agreed[NodeId(n)] = r.prediction;
    }
    for (int n = 0; n < kNodes; ++n) {
        InferenceReply r =
            engine.submit({0, "Cora", "GCN", NodeId(n)}).get();
        EXPECT_EQ(r.prediction, agreed[NodeId(n)]);
    }

    // All retired epochs drain now that nothing is in flight.
    engine.reclaimRetiredArtifacts();
    EXPECT_EQ(engine.cache().retiredCount(), 0u);
}
