/**
 * @file
 * Tests for the shared parallel runtime (sim/parallel) and the kernels
 * rewritten on top of it: exact serial/parallel parity for SpMM and the
 * three GEMM variants at 1..8 threads, nnz-balanced partitioning on a
 * power-law graph, pool reuse/teardown, nested-region safety, exception
 * propagation, and fused-pipeline stats invariance under threading.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "graph/generate.hpp"
#include "graph/graph.hpp"
#include "nn/adam.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"
#include "tensor/fused.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

using namespace gcod;

namespace {

/** Restore the ambient thread policy when a test ends. */
struct ThreadGuard
{
    int saved = currentThreads();
    ~ThreadGuard() { setThreads(saved); }
};

Matrix
randomDense(int64_t r, int64_t c, Rng &rng)
{
    Matrix m(r, c);
    for (auto &v : m.data())
        v = float(rng.normal(0.0, 1.0));
    return m;
}

/** Bitwise equality (not tolerance): parity must be exact. */
bool
bitEqual(const Matrix &a, const Matrix &b)
{
    return a.sameShape(b) &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.data().size() * sizeof(float)) == 0;
}

} // namespace

// ----------------------------------------------------------- partitioning
TEST(Ranges, StaticCoverageAndBalance)
{
    auto ranges = staticRanges(3, 103, 7);
    ASSERT_EQ(ranges.size(), 7u);
    int64_t at = 3;
    for (const Range &r : ranges) {
        EXPECT_EQ(r.begin, at);
        EXPECT_GE(r.size(), 100 / 7);
        EXPECT_LE(r.size(), 100 / 7 + 1);
        at = r.end;
    }
    EXPECT_EQ(at, 103);

    // Never more ranges than elements; empty span yields nothing.
    EXPECT_EQ(staticRanges(0, 3, 8).size(), 3u);
    EXPECT_TRUE(staticRanges(5, 5, 4).empty());
}

TEST(Ranges, WeightedBalancesNnzOnPowerLawGraph)
{
    Rng rng(7);
    Graph g = barabasiAlbert(4000, 4, rng);
    const auto &indptr = g.adjacency().indptr();
    int64_t total = indptr.back();
    int64_t max_row = 0;
    for (size_t r = 0; r + 1 < indptr.size(); ++r)
        max_row = std::max(max_row, indptr[r + 1] - indptr[r]);

    for (int parts : {2, 4, 8}) {
        auto ranges = weightedRanges(indptr, parts);
        ASSERT_FALSE(ranges.empty());
        EXPECT_LE(int(ranges.size()), parts);
        int64_t at = 0;
        int64_t heaviest = 0;
        for (const Range &r : ranges) {
            EXPECT_EQ(r.begin, at);
            at = r.end;
            heaviest = std::max(heaviest,
                                indptr[size_t(r.end)] -
                                    indptr[size_t(r.begin)]);
        }
        EXPECT_EQ(at, int64_t(indptr.size()) - 1);
        // Each range carries at most one equal share plus one row's worth
        // of slack — on a power-law graph a row-count split would be far
        // outside this bound.
        EXPECT_LE(heaviest, total / parts + max_row);
    }

    // Row-count splits really are worse on this graph: preferential
    // attachment front-loads heavy nodes, so the first quarter of the
    // rows carries well over a quarter of the nnz.
    auto byRows = staticRanges(0, int64_t(indptr.size()) - 1, 4);
    int64_t first = indptr[size_t(byRows[0].end)] - indptr[0];
    EXPECT_GT(first, (total / 4) * 5 / 4);
}

// ------------------------------------------------------------------- pool
TEST(ThreadPool, ReusesWorkersAcrossJobs)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workers(), 3);
    std::atomic<int64_t> sum{0};
    auto ranges = staticRanges(0, 1000, 8);
    for (int job = 0; job < 3; ++job) {
        pool.run(ranges, [&](const Range &r, size_t) {
            for (int64_t i = r.begin; i < r.end; ++i)
                sum.fetch_add(i, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(sum.load(), 3 * (999 * 1000 / 2));
    EXPECT_EQ(pool.jobsRun(), 3u);
    EXPECT_EQ(pool.workers(), 3); // persistent, not per-job
}

TEST(ThreadPool, TeardownJoinsCleanly)
{
    for (int i = 0; i < 5; ++i) {
        ThreadPool pool(2);
        std::atomic<int> hits{0};
        pool.run(staticRanges(0, 64, 8),
                 [&](const Range &r, size_t) { hits += int(r.size()); });
        EXPECT_EQ(hits.load(), 64);
        // Destructor joins workers; looping catches teardown races.
    }
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadGuard guard;
    setThreads(4);
    std::atomic<int64_t> sum{0};
    parallelFor(0, 8, [&](const Range &outer, size_t) {
        for (int64_t i = outer.begin; i < outer.end; ++i) {
            // A nested region must degrade to inline execution instead
            // of deadlocking on the pool.
            parallelFor(0, 100, [&](const Range &inner, size_t) {
                for (int64_t j = inner.begin; j < inner.end; ++j)
                    sum.fetch_add(1, std::memory_order_relaxed);
            });
        }
    });
    EXPECT_EQ(sum.load(), 800);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadGuard guard;
    setThreads(4);
    EXPECT_THROW(
        parallelFor(0, 64,
                    [&](const Range &r, size_t) {
                        if (r.begin >= 0)
                            throw std::logic_error("boom");
                    }),
        std::logic_error);
    // The pool survives a throwing job.
    std::atomic<int> hits{0};
    parallelFor(0, 64, [&](const Range &r, size_t) { hits += int(r.size()); });
    EXPECT_EQ(hits.load(), 64);
}

TEST(Threads, ConfigResolution)
{
    ThreadGuard guard;
    setThreads(6);
    EXPECT_EQ(currentThreads(), 6);
    setThreads(0); // clamped up to 1
    EXPECT_EQ(currentThreads(), 1);
    EXPECT_GE(hardwareThreads(), 1);
}

// ----------------------------------------------------------------- parity
TEST(Parity, GemmExactAcrossThreadCounts)
{
    ThreadGuard guard;
    Rng rng(11);
    Matrix a = randomDense(137, 91, rng);
    Matrix b = randomDense(91, 63, rng);
    Matrix at_b_rhs = randomDense(137, 63, rng); // for A^T * rhs
    Matrix abt_rhs = randomDense(85, 91, rng);   // for A * rhs^T

    setThreads(1);
    Matrix c1 = matmul(a, b);
    Matrix ta1 = matmulTransposedA(a, at_b_rhs);
    Matrix tb1 = matmulTransposedB(a, abt_rhs);
    for (int t = 2; t <= 8; ++t) {
        setThreads(t);
        EXPECT_TRUE(bitEqual(matmul(a, b), c1)) << t << " threads";
        EXPECT_TRUE(bitEqual(matmulTransposedA(a, at_b_rhs), ta1))
            << t << " threads";
        EXPECT_TRUE(bitEqual(matmulTransposedB(a, abt_rhs), tb1))
            << t << " threads";
    }
}

TEST(Parity, SpmmExactOnPowerLawGraph)
{
    ThreadGuard guard;
    Rng rng(13);
    Graph g = barabasiAlbert(3000, 3, rng);
    const CsrMatrix &adj = g.adjacency();
    Matrix x = randomDense(3000, 33, rng);

    setThreads(1);
    Matrix y1 = spmmRowWise(adj, x);
    for (int t = 2; t <= 8; ++t) {
        setThreads(t);
        EXPECT_TRUE(bitEqual(spmmRowWise(adj, x), y1)) << t << " threads";
    }
}

TEST(Parity, ElementwiseAndAdamExact)
{
    ThreadGuard guard;
    Rng rng(17);
    Matrix x = randomDense(301, 47, rng);
    Matrix gin = randomDense(301, 47, rng);

    setThreads(1);
    Matrix r1 = relu(x);
    Matrix rb1 = reluBackward(gin, x);
    Matrix sm1 = softmaxRows(x);

    Matrix w1 = randomDense(64, 48, rng);
    Matrix gw = randomDense(64, 48, rng);
    Matrix w_serial = w1;
    {
        Adam adam({&w_serial}, {});
        for (int i = 0; i < 3; ++i)
            adam.step({&gw});
    }

    for (int t = 2; t <= 8; ++t) {
        setThreads(t);
        EXPECT_TRUE(bitEqual(relu(x), r1)) << t;
        EXPECT_TRUE(bitEqual(reluBackward(gin, x), rb1)) << t;
        EXPECT_TRUE(bitEqual(softmaxRows(x), sm1)) << t;
        Matrix w_par = w1;
        Adam adam({&w_par}, {});
        for (int i = 0; i < 3; ++i)
            adam.step({&gw});
        EXPECT_TRUE(bitEqual(w_par, w_serial)) << t;
    }
}

// ------------------------------------------------------------------ fused
TEST(Fused, StatsAndResultsInvariantUnderThreading)
{
    ThreadGuard guard;
    Rng rng(19);
    Graph g = barabasiAlbert(600, 3, rng);
    CscMatrix csc = g.adjacency().toCsc();
    Matrix x = randomDense(600, 24, rng);
    Matrix w = randomDense(24, 12, rng);

    setThreads(1);
    FusedStats eff1, res1;
    Matrix ye1 = fusedEfficiencyAware(csc, x, w, &eff1);
    Matrix yr1 = fusedResourceAware(csc, x, w, &res1);

    for (int t = 2; t <= 8; ++t) {
        setThreads(t);
        FusedStats eff, res;
        Matrix ye = fusedEfficiencyAware(csc, x, w, &eff);
        Matrix yr = fusedResourceAware(csc, x, w, &res);
        EXPECT_TRUE(bitEqual(ye, ye1)) << t << " threads";
        EXPECT_TRUE(bitEqual(yr, yr1)) << t << " threads";
        // FusedStats models the accelerator pipeline, so host threading
        // must not perturb it.
        EXPECT_EQ(eff.macs, eff1.macs) << t;
        EXPECT_EQ(eff.peakIntermediate, eff1.peakIntermediate) << t;
        EXPECT_EQ(eff.peakOutput, eff1.peakOutput) << t;
        EXPECT_EQ(res.macs, res1.macs) << t;
        EXPECT_EQ(res.peakIntermediate, res1.peakIntermediate) << t;
        EXPECT_EQ(res.peakOutput, res1.peakOutput) << t;
    }
}

// ------------------------------------------------------- conversion paths
TEST(CooToCsr, LvalueAndRvaluePathsAgree)
{
    Rng rng(23);
    CooMatrix coo(50, 40);
    for (int i = 0; i < 400; ++i)
        coo.add(NodeId(rng.uniformInt(0, 49)), NodeId(rng.uniformInt(0, 39)),
                float(rng.normal(0.0, 1.0)));
    // Duplicates on purpose: both paths must coalesce identically.
    coo.add(7, 7, 1.0f);
    coo.add(7, 7, 2.0f);

    CsrMatrix viaLvalue = coo.toCsr(); // coo untouched
    EXPECT_EQ(coo.nnz(), 402);
    CsrMatrix viaRvalue = std::move(coo).toCsr();
    EXPECT_EQ(coo.nnz(), 0); // consumed

    ASSERT_EQ(viaLvalue.nnz(), viaRvalue.nnz());
    EXPECT_EQ(viaLvalue.indptr(), viaRvalue.indptr());
    EXPECT_EQ(viaLvalue.indices(), viaRvalue.indices());
    EXPECT_EQ(viaLvalue.values(), viaRvalue.values());
    // Exact reservation: no slack capacity from the duplicate entries
    // (the old path reserved one slot per raw COO entry).
    EXPECT_LT(viaLvalue.indices().capacity(), 402u);
}
