/**
 * @file
 * Tests for the integer (quantized) execution path: packed matrix round
 * trips, integer kernels vs their fp32 counterparts, the mixed-precision
 * forward's error bound against fp32 logits, bit-identity across thread
 * counts and shard counts, and the serving route that executes an
 * artifact's int8 pack when the backend's registry capability says
 * bits=8.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "graph/generate.hpp"
#include "nn/quant_exec.hpp"
#include "serve/engine.hpp"
#include "shard/executor.hpp"
#include "sim/parallel.hpp"

using namespace gcod;
using namespace gcod::serve;

namespace {

/**
 * Documented bound for the default mixed policy (int8 dense branch,
 * int16 protected branch, int16 operator): quantized logits stay within
 * 5% of the fp32 logit peak (docs/quantization.md).
 */
constexpr double kLogitErrorFraction = 0.05;

Matrix
randomDense(int64_t r, int64_t c, Rng &rng)
{
    Matrix m(r, c);
    for (auto &v : m.data())
        v = float(rng.normal(0.0, 1.0));
    return m;
}

double
peakAbs(const Matrix &m)
{
    double peak = 0.0;
    for (float v : m.data())
        peak = std::max(peak, double(std::fabs(v)));
    return peak;
}

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    return a.sameShape(b) &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.data().size() * sizeof(float)) == 0;
}

/** A small GCN + context + pack over a power-law graph. */
struct QuantFixture
{
    Graph graph;
    GraphContext ctx;
    std::unique_ptr<GnnModel> model;
    Matrix x;
    ForwardRecipe recipe;

    explicit QuantFixture(NodeId nodes = 400, int features = 48,
                          uint64_t seed = 11)
        : graph([&] {
              Rng grng(seed);
              return barabasiAlbert(nodes, 4, grng);
          }()),
          ctx(graph)
    {
        Rng rng(seed + 1);
        model = makeModel("GCN", features, 7, false, rng);
        x = randomDense(nodes, features, rng);
        recipe = forwardRecipeFor(*model, ctx);
    }
};

} // namespace

// --------------------------------------------------------------- packing
TEST(QuantizedMatrixTest, PacksAtNarrowWidths)
{
    Rng rng(3);
    Matrix x = randomDense(20, 30, rng);
    QuantizedMatrix q8(x, 8);
    QuantizedMatrix q16(x, 16);
    EXPECT_TRUE(q8.narrow());
    EXPECT_FALSE(q16.narrow());
    EXPECT_DOUBLE_EQ(q8.payloadBytes(), 20.0 * 30.0);
    EXPECT_DOUBLE_EQ(q16.payloadBytes(), 2.0 * 20.0 * 30.0);
    // Round trip within half a quantization step.
    EXPECT_LE(Matrix::maxAbsDiff(x, q8.toMatrix()),
              q8.params().scale * 0.5 + 1e-6);
    EXPECT_LE(Matrix::maxAbsDiff(x, q16.toMatrix()),
              q16.params().scale * 0.5 + 1e-6);
}

TEST(QuantizedMatrixTest, SharedScaleCodesStaySymmetric)
{
    // The packed ctor must honor the symmetric clamp for values beyond
    // the scale-defining peak (shared-scale callers).
    QuantParams qp;
    qp.scale = 1.0f;
    qp.bits = 8;
    Matrix x(1, 2);
    x(0, 0) = -1000.0f;
    x(0, 1) = 1000.0f;
    QuantizedMatrix q(x, qp);
    EXPECT_EQ(q.at(0, 0), -127);
    EXPECT_EQ(q.at(0, 1), 127);
}

// --------------------------------------------------------------- kernels
TEST(QuantKernelsTest, QmatmulMatchesDequantizedFloatProduct)
{
    Rng rng(5);
    Matrix a = randomDense(40, 30, rng);
    Matrix b = randomDense(30, 20, rng);
    QuantizedMatrix qa(a, 8), qb(b, 8);
    Matrix ref = matmul(qa.toMatrix(), qb.toMatrix());
    Matrix got = qmatmul(qa, qb);
    EXPECT_LE(Matrix::maxAbsDiff(ref, got), 1e-3);
}

TEST(QuantKernelsTest, QspmmMatchesDequantizedFloatProduct)
{
    Rng rng(6);
    Graph g = barabasiAlbert(300, 3, rng);
    GraphContext ctx(g);
    const CsrMatrix &op = ctx.normalized();
    Matrix x = randomDense(g.numNodes(), 24, rng);
    QuantizedCsr qop = quantizeCsr(op, 16);
    QuantizedMatrix qx(x, 8);
    // Dequantized operator for the float reference.
    std::vector<float> deq(qop.values.size());
    for (size_t i = 0; i < deq.size(); ++i)
        deq[i] = float(qop.values[i]) * qop.qp.scale;
    CsrMatrix dop(op.rows(), op.cols(), op.indptr(), op.indices(), deq);
    Matrix ref = spmm(dop, qx.toMatrix());
    Matrix got = qspmm(qop, qx);
    EXPECT_LE(Matrix::maxAbsDiff(ref, got), 1e-3);
}

TEST(QuantKernelsTest, RowScaledGemmIsExactPerRowAndStitchesBitIdentically)
{
    Rng rng(7);
    Matrix x = randomDense(50, 30, rng);
    Matrix w = randomDense(30, 20, rng);
    // Blow up a few rows so one shared scale would starve the rest —
    // the per-row pack must stay accurate anyway.
    for (int64_t j = 0; j < x.cols(); ++j)
        x(3, j) *= 1000.0f;
    std::vector<uint8_t> branch(size_t(x.rows()), 0);
    branch[3] = 1;
    branch[17] = 1;
    QuantizedMatrix wLo(w, 8), wHi(w, 16);
    RowQuantizedMatrix rx = rowQuantize(x, branch, 8, 16);
    Matrix full = qmatmulRowScaled(rx, wLo, wHi);

    // Accuracy: each row against its own dequantized product.
    Matrix deq(x.rows(), x.cols());
    for (int64_t r = 0; r < x.rows(); ++r)
        for (int64_t j = 0; j < x.cols(); ++j)
            deq(r, j) = float(rx.row(r)[j]) * rx.rowScale[size_t(r)];
    Matrix refLo = matmul(deq, wLo.toMatrix());
    Matrix refHi = matmul(deq, wHi.toMatrix());
    for (int64_t r = 0; r < x.rows(); ++r) {
        const Matrix &ref = branch[size_t(r)] ? refHi : refLo;
        for (int64_t j = 0; j < full.cols(); ++j)
            EXPECT_NEAR(full(r, j), ref(r, j),
                        2e-2f * std::fabs(ref(r, j)) + 1e-3f);
    }

    // Determinism: arbitrary row subsets stitched serially reproduce
    // the parallel kernel bit for bit (the shard executor's contract).
    Matrix stitched(x.rows(), w.cols(), 0.0f);
    std::vector<NodeId> evens, odds;
    for (NodeId r = 0; r < NodeId(x.rows()); ++r)
        (r % 2 == 0 ? evens : odds).push_back(r);
    qmatmulRowScaledRows(rx, wLo, wHi, odds, stitched);
    qmatmulRowScaledRows(rx, wLo, wHi, evens, stitched);
    EXPECT_EQ(std::memcmp(full.data().data(), stitched.data().data(),
                          full.data().size() * sizeof(float)),
              0);
}

// --------------------------------------------------- mixed-precision GNN
TEST(QuantExecTest, BranchSplitFollowsDegreeProtectionRule)
{
    QuantFixture f;
    MixedPrecisionPolicy pol;
    QuantizedGnn q = quantizeGnn(f.recipe, f.graph.degrees(), pol);
    ASSERT_EQ(q.branchOf.size(), size_t(f.graph.numNodes()));
    EXPECT_GT(q.protectedCount, 0);
    EXPECT_LT(q.protectedCount, int64_t(f.graph.numNodes()));
    int32_t threshold =
        protectionThreshold(f.graph.degrees(), pol.protectRatio);
    for (NodeId v = 0; v < f.graph.numNodes(); ++v)
        EXPECT_EQ(q.branchOf[size_t(v)] != 0,
                  f.graph.degrees()[size_t(v)] >= threshold);
}

TEST(QuantExecTest, MixedForwardWithinDocumentedLogitBound)
{
    QuantFixture f;
    Matrix ref = referenceForward(f.recipe, f.x);
    QuantizedGnn q = quantizeGnn(f.recipe, f.graph.degrees());
    Matrix got = quantizedForwardMixed(q, f.x);
    double err = Matrix::maxAbsDiff(ref, got);
    EXPECT_GT(err, 0.0) << "quantization must actually change numerics";
    EXPECT_LE(err, kLogitErrorFraction * peakAbs(ref));
}

TEST(QuantExecTest, WiderBitsShrinkLogitError)
{
    QuantFixture f;
    Matrix ref = referenceForward(f.recipe, f.x);
    double last = 1e30;
    for (int bits : {4, 8, 16}) {
        MixedPrecisionPolicy pol;
        pol.denseBits = bits;
        pol.sparseBits = std::min(2 * bits, 16);
        pol.operatorBits = pol.sparseBits;
        QuantizedGnn q = quantizeGnn(f.recipe, f.graph.degrees(), pol);
        double err =
            Matrix::maxAbsDiff(ref, quantizedForwardMixed(q, f.x));
        EXPECT_LT(err, last);
        last = err;
    }
}

TEST(QuantExecTest, BitIdenticalAcrossThreadCounts)
{
    QuantFixture f;
    QuantizedGnn q = quantizeGnn(f.recipe, f.graph.degrees());
    int before = currentThreads();
    setThreads(1);
    Matrix serial = quantizedForwardMixed(q, f.x);
    for (int t : {2, 3, 5, 8}) {
        setThreads(t);
        EXPECT_TRUE(bitIdentical(serial, quantizedForwardMixed(q, f.x)))
            << "thread count " << t;
    }
    setThreads(before);
}

TEST(QuantExecTest, BitIdenticalAcrossShardCounts)
{
    QuantFixture f(600, 32, 21);
    QuantizedGnn q = quantizeGnn(f.recipe, f.graph.degrees());
    Matrix mono = quantizedForwardMixed(q, f.x);
    for (int k : {1, 2, 4}) {
        shard::ShardPlanOptions popts;
        popts.shards = k;
        shard::ShardPlan plan = shard::buildShardPlan(f.graph, popts);
        Matrix sharded = shard::quantizedShardedForward(plan, q, f.x);
        EXPECT_TRUE(bitIdentical(mono, sharded)) << "K=" << k;
    }
}

// -------------------------------------------------------------- model zoo
// The op-graph interpreter is the execution contract for every family:
// referenceForward must reproduce GnnModel::forward bit for bit (memcmp)
// at every thread count 1..8, and the quantized interpreter must be
// thread-stable over the same recipes.
class ZooParity : public ::testing::TestWithParam<std::string>
{};

TEST_P(ZooParity, RecipeMatchesModelForwardAtThreads1To8)
{
    const std::string family = GetParam();
    Rng grng(29);
    Graph g = barabasiAlbert(300, 4, grng);
    GraphContext ctx(g);
    Rng rng(31);
    auto model = makeModel(family, 16, 6, false, rng);
    Matrix x = randomDense(g.numNodes(), 16, rng);
    ForwardRecipe recipe = forwardRecipeFor(*model, ctx);
    EXPECT_TRUE(supportsRecipeForward(model->spec()));

    int before = currentThreads();
    setThreads(1);
    Matrix mono = model->forward(ctx, x);
    Matrix serial = referenceForward(recipe, x);
    EXPECT_TRUE(bitIdentical(mono, serial))
        << family << " recipe diverged from model forward, maxAbsDiff="
        << Matrix::maxAbsDiff(mono, serial);
    QuantizedGnn q = quantizeGnn(recipe, g.degrees());
    Matrix qserial = quantizedForwardMixed(q, x);
    for (int t = 2; t <= 8; ++t) {
        setThreads(t);
        EXPECT_TRUE(bitIdentical(mono, model->forward(ctx, x)))
            << family << " model forward at threads " << t;
        EXPECT_TRUE(bitIdentical(serial, referenceForward(recipe, x)))
            << family << " recipe forward at threads " << t;
        EXPECT_TRUE(bitIdentical(qserial, quantizedForwardMixed(q, x)))
            << family << " quantized forward at threads " << t;
    }
    setThreads(before);
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooParity,
                         ::testing::Values("GCN", "GraphSAGE", "GAT",
                                           "GIN", "ResGCN"));

// ----------------------------------------------------------------- serve
TEST(QuantServeTest, GcodBits8RouteExecutesInt8ArtifactPack)
{
    ServeOptions opts;
    opts.backends = {"GCoD@bits=8"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    opts.batching.maxDelay = std::chrono::microseconds(200);
    ServingEngine engine(opts);
    ASSERT_EQ(engine.quantBits(), std::vector<int>{8});

    std::vector<std::future<InferenceReply>> futures;
    for (NodeId n = 0; n < 5; ++n)
        futures.push_back(engine.submit({0, "Cora", "GCN", n}));
    engine.drain();

    ArtifactKey key{"Cora", "GCN", hashGcodOptions(opts.gcod)};
    auto bundle = engine.cache().get(key).bundle;
    ASSERT_TRUE(bundle->hasHostExec());
    ASSERT_EQ(bundle->quantized.count(8), 1u);
    EXPECT_EQ(bundle->quantized.at(8).policy.denseBits, 8);

    // The served predictions must come from the int8 pack's logits.
    Matrix qlogits = quantizedForwardMixed(bundle->quantized.at(8),
                                           bundle->hostFeatures);
    Matrix ref = referenceForward(bundle->hostRecipe,
                                  bundle->hostFeatures);
    double err = Matrix::maxAbsDiff(qlogits, ref);
    EXPECT_GT(err, 0.0);
    EXPECT_LE(err, kLogitErrorFraction * peakAbs(ref));

    for (size_t i = 0; i < futures.size(); ++i) {
        InferenceReply r = futures[i].get();
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_EQ(r.executedBits, 8);
        int64_t row = int64_t(i) % qlogits.rows();
        const float *lrow = qlogits.row(row);
        int best = 0;
        for (int64_t c = 1; c < qlogits.cols(); ++c)
            if (lrow[c] > lrow[best])
                best = int(c);
        EXPECT_EQ(r.prediction, best);
    }
    const StatScalar *quantized =
        engine.stats().group().findScalar("batches_quantized");
    ASSERT_NE(quantized, nullptr);
    EXPECT_GE(quantized->value(), 1.0);
}

TEST(QuantServeTest, UnpackableBackendPrecisionFallsBackToFp32)
{
    // Packed codes cover 2..16 bits; a backend declaring e.g. bits=24
    // (legal as a generic registry override) must serve fp32 host math
    // instead of crashing the artifact build.
    ServeOptions opts;
    opts.backends = {"HyGCN@bits=24"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    opts.batching.maxDelay = std::chrono::microseconds(200);
    ServingEngine engine(opts);
    ASSERT_EQ(engine.quantBits(), std::vector<int>{24});

    InferenceReply r = engine.submit({0, "Cora", "GCN", 1}).get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.executedBits, 32);
    EXPECT_GE(r.prediction, 0);
}

TEST(QuantServeTest, FullPrecisionRouteReportsFp32)
{
    ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    opts.batching.maxDelay = std::chrono::microseconds(200);
    ServingEngine engine(opts);
    EXPECT_TRUE(engine.quantBits().empty());

    InferenceReply r = engine.submit({0, "Cora", "GCN", 3}).get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.executedBits, 32);
    EXPECT_GE(r.prediction, 0);
    EXPECT_EQ(
        engine.stats().group().findScalar("batches_quantized")->value(),
        0.0);
}
