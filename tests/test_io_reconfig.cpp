/**
 * @file
 * Tests for graph/matrix serialization and the Fig. 8 reconfiguration
 * flow (network parser + hardware compiler).
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "accel/reconfig.hpp"
#include "gcod/pipeline.hpp"
#include "graph/generate.hpp"
#include "graph/io.hpp"

using namespace gcod;

namespace {

std::string
tmpPath(const std::string &name)
{
    return "/tmp/gcod_io_test_" + name;
}

} // namespace

// --------------------------------------------------------------------- io
TEST(Io, EdgeListRoundTrip)
{
    Rng rng(1);
    Graph g = erdosRenyi(60, 150, rng);
    std::string path = tmpPath("edges.txt");
    saveEdgeList(g, path);
    Graph back = loadEdgeList(path);
    EXPECT_EQ(back.numNodes(), g.numNodes());
    EXPECT_EQ(back.numEdges(), g.numEdges());
    g.adjacency().forEach([&](NodeId r, NodeId c, float v) {
        EXPECT_FLOAT_EQ(back.adjacency().at(r, c), v);
    });
    std::remove(path.c_str());
}

TEST(Io, EdgeListHeaderPreservesIsolatedTailNodes)
{
    Graph g(10, {{0, 1}}); // nodes 2..9 are isolated
    std::string path = tmpPath("isolated.txt");
    saveEdgeList(g, path);
    Graph back = loadEdgeList(path);
    EXPECT_EQ(back.numNodes(), 10);
    std::remove(path.c_str());
}

TEST(Io, MatrixMarketRoundTrip)
{
    Rng rng(2);
    Graph g = erdosRenyi(40, 100, rng);
    CsrMatrix m = g.normalizedAdjacency();
    std::string path = tmpPath("mat.mtx");
    saveMatrixMarket(m, path);
    CsrMatrix back = loadMatrixMarket(path);
    EXPECT_EQ(back.nnz(), m.nnz());
    m.forEach([&](NodeId r, NodeId c, float v) {
        EXPECT_NEAR(back.at(r, c), v, 1e-5);
    });
    std::remove(path.c_str());
}

TEST(Io, LabelsRoundTrip)
{
    std::vector<int> labels = {0, 3, 2, 1, 7, 0};
    std::string path = tmpPath("labels.txt");
    saveLabels(labels, path);
    EXPECT_EQ(loadLabels(path), labels);
    std::remove(path.c_str());
}

TEST(Io, MissingFileIsFatal)
{
    EXPECT_THROW(loadEdgeList("/nonexistent/nope.txt"),
                 std::runtime_error);
    EXPECT_THROW(loadMatrixMarket("/nonexistent/nope.mtx"),
                 std::runtime_error);
}

// ----------------------------------------------------------------- parser
TEST(Parser, ExtractsLayerDimsAndOps)
{
    ModelSpec spec = makeModelSpec("GCN", 1433, 7, false);
    ParsedNetwork net = parseNetwork(spec, 2708, 5429);
    ASSERT_EQ(net.layers.size(), 2u);
    EXPECT_EQ(net.layers[0].op, "GCNConv");
    EXPECT_EQ(net.layers[0].inDim, 1433);
    EXPECT_EQ(net.layers[0].outDim, 16);
    EXPECT_EQ(net.maxFeatureDim(), 1433);
    EXPECT_FALSE(net.anySampling());
    EXPECT_FALSE(net.anyAttention());
    EXPECT_GT(net.layers[0].combMacs, net.layers[1].combMacs);
}

TEST(Parser, DetectsSamplingAndAttention)
{
    ParsedNetwork sage =
        parseNetwork(makeModelSpec("GraphSAGE", 602, 41, true), 1000, 5000);
    EXPECT_TRUE(sage.anySampling());
    EXPECT_EQ(sage.layers[0].op, "SAGEConv");

    ParsedNetwork gat =
        parseNetwork(makeModelSpec("GAT", 1433, 7, false), 1000, 5000);
    EXPECT_TRUE(gat.anyAttention());
    EXPECT_EQ(gat.layers[0].op, "AttentionConv");

    ParsedNetwork gin =
        parseNetwork(makeModelSpec("GIN", 1433, 7, false), 1000, 5000);
    EXPECT_EQ(gin.layers[0].op, "GINConv");

    ParsedNetwork res =
        parseNetwork(makeModelSpec("ResGCN", 128, 40, true), 1000, 5000);
    EXPECT_EQ(res.layers[0].op, "MaxConv");
}

// --------------------------------------------------------------- compiler
class CompilerFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Rng rng(42);
        synth_ = synthesize(profileByName("Cora"), 0.5, rng);
        outcome_ = runGcodStructureOnly(synth_, {});
        net_ = parseNetwork(makeModelSpec("GCN", 1433, 7, false),
                            synth_.graph.numNodes(),
                            synth_.graph.numEdges());
    }

    SyntheticGraph synth_;
    GcodOutcome outcome_;
    ParsedNetwork net_;
};

TEST_F(CompilerFixture, RespectsAllBudgets)
{
    HardwarePlan plan =
        compileHardware(makeGcodConfig(32), net_, outcome_.workload);
    EXPECT_NO_THROW(plan.validate());
    EXPECT_EQ(plan.chunks.size(),
              size_t(outcome_.workload.numClasses));
}

TEST_F(CompilerFixture, AllocationIsWorkloadProportional)
{
    HardwarePlan plan =
        compileHardware(makeGcodConfig(32), net_, outcome_.workload);
    const WorkloadDescriptor &wd = outcome_.workload;
    // The chunk with more class nnz gets at least as many PEs.
    for (size_t a = 0; a < plan.chunks.size(); ++a) {
        for (size_t b = 0; b < plan.chunks.size(); ++b) {
            if (wd.classNnz[size_t(plan.chunks[a].classId)] >
                wd.classNnz[size_t(plan.chunks[b].classId)]) {
                EXPECT_GE(plan.chunks[a].pes, plan.chunks[b].pes);
            }
        }
    }
    // Workload shares cover everything.
    double share = plan.sparser.workloadShare;
    for (const auto &c : plan.chunks)
        share += c.workloadShare;
    EXPECT_NEAR(share, 1.0, 1e-6);
}

TEST_F(CompilerFixture, SamplingUnitsFollowTheModel)
{
    HardwarePlan gcn =
        compileHardware(makeGcodConfig(32), net_, outcome_.workload);
    EXPECT_FALSE(gcn.samplingUnits);
    ParsedNetwork sage = parseNetwork(
        makeModelSpec("GraphSAGE", 1433, 7, false),
        synth_.graph.numNodes(), synth_.graph.numEdges());
    HardwarePlan p =
        compileHardware(makeGcodConfig(32), sage, outcome_.workload);
    EXPECT_TRUE(p.samplingUnits);
}

TEST_F(CompilerFixture, DescribePlanMentionsEveryChunk)
{
    HardwarePlan plan =
        compileHardware(makeGcodConfig(32), net_, outcome_.workload);
    std::string desc = describePlan(plan);
    for (const auto &c : plan.chunks)
        EXPECT_NE(desc.find("class " + std::to_string(c.classId)),
                  std::string::npos);
    EXPECT_NE(desc.find("sparser branch"), std::string::npos);
}

TEST_F(CompilerFixture, EightBitTemplateCompilesToo)
{
    HardwarePlan plan =
        compileHardware(makeGcodConfig(8), net_, outcome_.workload);
    EXPECT_NO_THROW(plan.validate());
    EXPECT_NEAR(plan.platform.numPEs, 10240.0, 1e-9);
}
