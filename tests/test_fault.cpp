/**
 * @file
 * Fault-injection and recovery tests: FaultPlan purity and seeded
 * determinism (same seed => same decisions, same trace, at any thread
 * count), injection-rate accuracy, the GCOD_FAULT_SEED override, the
 * backend circuit breaker's trip/probe/close lifecycle, bit-identical
 * shard re-execution under halo drops, and end-to-end engine recovery:
 * retries + failover complete every request with logits byte-identical
 * to a fault-free run, deadlines resolve as timeouts (never drops), and
 * injected store corruption quarantines + republishes the artifact.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "fault/fault.hpp"
#include "graph/generate.hpp"
#include "nn/graph_context.hpp"
#include "nn/models.hpp"
#include "serve/engine.hpp"
#include "shard/executor.hpp"
#include "store/artifact_io.hpp"
#include "store/file.hpp"
#include "shard/plan.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"

using namespace gcod;
using namespace gcod::fault;
using namespace gcod::serve;

namespace {

/**
 * Scoped GCOD_FAULT_SEED control: several tests need the env override
 * pinned (or absent) regardless of how the suite was launched — CI
 * deliberately sweeps GCOD_FAULT_SEED, and these tests must hold under
 * any sweep value. Restores the prior value on scope exit.
 */
class ScopedFaultSeedEnv
{
  public:
    explicit ScopedFaultSeedEnv(const char *value)
    {
        const char *old = std::getenv("GCOD_FAULT_SEED");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value)
            ::setenv("GCOD_FAULT_SEED", value, 1);
        else
            ::unsetenv("GCOD_FAULT_SEED");
    }
    ~ScopedFaultSeedEnv()
    {
        if (had_)
            ::setenv("GCOD_FAULT_SEED", old_.c_str(), 1);
        else
            ::unsetenv("GCOD_FAULT_SEED");
    }

  private:
    bool had_ = false;
    std::string old_;
};

std::string
scratchDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("gcod_fault_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    return a.sameShape(b) &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.data().size() * sizeof(float)) == 0;
}

} // namespace

// ---------------------------------------------------------------- FaultPlan
TEST(FaultPlanTest, DefaultPlanInjectsNothing)
{
    FaultPlan p;
    EXPECT_FALSE(p.enabled());
    for (uint64_t k = 0; k < 100; ++k)
        EXPECT_FALSE(p.wouldInject(FaultKind::BackendFailure, "s", k));
    EXPECT_FALSE(p.shouldInject(FaultKind::StoreCorrupt, "s"));
    EXPECT_EQ(p.injectedCount(), 0u);
    EXPECT_TRUE(p.trace().empty());
}

TEST(FaultPlanTest, DecisionsArePureFunctionsOfSeedSiteAndIndex)
{
    FaultConfig cfg;
    cfg.seed = 99;
    cfg.backendFailRate = 0.5;
    FaultPlan a(cfg), b(cfg);

    // Same (seed, kind, site, k) => same answer, in any evaluation
    // order, with any interleaved stateful draws on the other plan.
    for (uint64_t k = 0; k < 512; ++k)
        b.shouldInject(FaultKind::BackendFailure, "backend.GCoD");
    for (uint64_t k = 512; k-- > 0;) {
        EXPECT_EQ(
            a.wouldInject(FaultKind::BackendFailure, "backend.GCoD", k),
            b.wouldInject(FaultKind::BackendFailure, "backend.GCoD", k));
        // Repeated evaluation never flips.
        EXPECT_EQ(
            a.wouldInject(FaultKind::BackendFailure, "backend.GCoD", k),
            a.wouldInject(FaultKind::BackendFailure, "backend.GCoD", k));
    }
}

TEST(FaultPlanTest, SeedSiteAndKindAllSeparateDecisions)
{
    // Pin the env override off: this test is *about* distinct config
    // seeds, which GCOD_FAULT_SEED deliberately collapses.
    ScopedFaultSeedEnv env(nullptr);
    FaultConfig cfg;
    cfg.seed = 1;
    cfg.backendFailRate = 0.5;
    cfg.haloDropRate = 0.5;
    FaultPlan p1(cfg);
    cfg.seed = 2;
    FaultPlan p2(cfg);

    int seedDiff = 0, siteDiff = 0, kindDiff = 0;
    for (uint64_t k = 0; k < 2048; ++k) {
        seedDiff +=
            p1.wouldInject(FaultKind::BackendFailure, "backend.A", k) !=
            p2.wouldInject(FaultKind::BackendFailure, "backend.A", k);
        siteDiff +=
            p1.wouldInject(FaultKind::BackendFailure, "backend.A", k) !=
            p1.wouldInject(FaultKind::BackendFailure, "backend.B", k);
        kindDiff +=
            p1.wouldInject(FaultKind::BackendFailure, "backend.A", k) !=
            p1.wouldInject(FaultKind::HaloDrop, "backend.A", k);
    }
    EXPECT_GT(seedDiff, 0) << "seed does not enter the decision";
    EXPECT_GT(siteDiff, 0) << "site does not enter the decision";
    EXPECT_GT(kindDiff, 0) << "kind does not enter the decision";
}

TEST(FaultPlanTest, InjectionRateIsStatisticallyAccurate)
{
    FaultConfig cfg;
    cfg.seed = 4242;
    cfg.backendFailRate = 0.1;
    FaultPlan p(cfg);

    const uint64_t kDraws = 20000;
    uint64_t hits = 0;
    for (uint64_t k = 0; k < kDraws; ++k)
        hits += p.wouldInject(FaultKind::BackendFailure, "backend.X", k);
    double rate = double(hits) / double(kDraws);
    // 0.1 +- 14 sigma: holds for any seed unless the hash is broken.
    EXPECT_GE(rate, 0.07) << "observed rate " << rate;
    EXPECT_LE(rate, 0.13) << "observed rate " << rate;

    // Degenerate rates are exact, not statistical.
    cfg.backendFailRate = 0.0;
    cfg.haloDropRate = 1.0;
    FaultPlan q(cfg);
    for (uint64_t k = 0; k < 1000; ++k) {
        EXPECT_FALSE(q.wouldInject(FaultKind::BackendFailure, "s", k));
        EXPECT_TRUE(q.wouldInject(FaultKind::HaloDrop, "s", k));
    }
}

TEST(FaultPlanTest, StatefulDrawsCountInvocationsAndRecordTrace)
{
    FaultConfig cfg;
    cfg.seed = 7;
    cfg.backendFailRate = 0.3;
    FaultPlan p(cfg);

    uint64_t injected = 0;
    for (int i = 0; i < 200; ++i)
        injected += p.shouldInject(FaultKind::BackendFailure, "backend.G");
    EXPECT_EQ(p.invocations(FaultKind::BackendFailure, "backend.G"), 200u);
    EXPECT_EQ(p.injectedCount(FaultKind::BackendFailure), injected);
    EXPECT_EQ(p.injectedCount(), injected);
    EXPECT_EQ(p.trace().size(), size_t(injected));

    // The stateful walk must agree with the pure decision at each index,
    // and the trace must be exactly the injected subset.
    for (const FaultRecord &r : p.trace()) {
        EXPECT_EQ(r.kind, FaultKind::BackendFailure);
        EXPECT_EQ(r.site, "backend.G");
        EXPECT_TRUE(p.wouldInject(r.kind, r.site, r.invocation));
    }
}

TEST(FaultPlanTest, EnvSeedOverridesConfigSeed)
{
    FaultConfig cfg;
    cfg.seed = 7;
    cfg.backendFailRate = 0.5;
    {
        ScopedFaultSeedEnv env("123456789");
        EXPECT_EQ(faultSeedFromEnv(7), 123456789u);
        FaultPlan p(cfg);
        EXPECT_EQ(p.seed(), 123456789u);
    }
    {
        ScopedFaultSeedEnv env(nullptr);
        EXPECT_EQ(faultSeedFromEnv(7), 7u);
        FaultPlan p(cfg);
        EXPECT_EQ(p.seed(), 7u);
    }
}

TEST(FaultPlanTest, IndexedDecisionsAreThreadCountInvariant)
{
    FaultConfig cfg;
    cfg.seed = 31;
    cfg.haloDropRate = 0.25;

    // Serial reference walk over the index grid.
    FaultPlan serial(cfg);
    for (uint64_t k = 0; k < 1024; ++k)
        serial.checkIndexed(FaultKind::HaloDrop, "halo.fp32", k);

    // The same grid drawn from 4 racing threads, strided interleave:
    // arrival order is scrambled, the decision set must not be.
    FaultPlan threaded(cfg);
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
        workers.emplace_back([&threaded, t] {
            for (uint64_t k = uint64_t(t); k < 1024; k += 4)
                threaded.checkIndexed(FaultKind::HaloDrop, "halo.fp32", k);
        });
    for (std::thread &w : workers)
        w.join();

    EXPECT_GT(serial.injectedCount(), 0u);
    EXPECT_EQ(serial.trace(), threaded.trace());
}

// ---------------------------------------------------------- circuit breaker
TEST(CircuitBreakerTest, TripsProbesAndClosesThroughTheLifecycle)
{
    GcodOptions gopts;
    auto bundle = buildArtifact(
        ArtifactKey{"Cora", "GCN", hashGcodOptions(gopts)}, gopts, 0.25, 11);
    HealthOptions health;
    health.tripThreshold = 2;
    health.cooldownSeconds = 0.01;
    BackendRouter router({"GCoD", "HyGCN"}, health);

    int favorite = router.choose(*bundle).backend;
    int other = 1 - favorite;
    EXPECT_EQ(router.healthyCount(), 2);

    // One failure is not enough to trip; a success resets the streak.
    router.recordFailure(favorite);
    EXPECT_EQ(router.healthState(favorite), HealthState::Closed);
    router.recordSuccess(favorite);
    router.recordFailure(favorite);
    EXPECT_EQ(router.healthState(favorite), HealthState::Closed);

    // A consecutive streak at the threshold trips the breaker Open and
    // routing fails over to the surviving backend.
    router.recordFailure(favorite);
    EXPECT_EQ(router.healthState(favorite), HealthState::Open);
    EXPECT_EQ(router.trips(favorite), 1u);
    EXPECT_EQ(router.healthyCount(), 1);
    RouteDecision d = router.choose(*bundle);
    EXPECT_EQ(d.backend, other);
    EXPECT_FALSE(d.probe);

    // After the cooldown the tripped backend gets a single half-open
    // probe...
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    RouteDecision probe = router.choose(*bundle);
    EXPECT_EQ(probe.backend, favorite);
    EXPECT_TRUE(probe.probe);
    EXPECT_EQ(router.healthState(favorite), HealthState::HalfOpen);
    // ...and only one: the next batch routes around the probe in flight.
    RouteDecision during = router.choose(*bundle);
    EXPECT_EQ(during.backend, other);

    // A failed probe re-opens immediately.
    router.recordFailure(favorite);
    EXPECT_EQ(router.healthState(favorite), HealthState::Open);
    EXPECT_EQ(router.trips(favorite), 2u);

    // A successful probe closes the breaker for good.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    RouteDecision again = router.choose(*bundle);
    EXPECT_TRUE(again.probe);
    router.recordSuccess(favorite);
    EXPECT_EQ(router.healthState(favorite), HealthState::Closed);
    EXPECT_EQ(router.healthyCount(), 2);
    EXPECT_EQ(router.failures(favorite), 4u);
}

TEST(CircuitBreakerTest, AllBackendsTrippedStillRoutesSomewhere)
{
    GcodOptions gopts;
    auto bundle = buildArtifact(
        ArtifactKey{"Cora", "GCN", hashGcodOptions(gopts)}, gopts, 0.25, 11);
    HealthOptions health;
    health.tripThreshold = 1;
    health.cooldownSeconds = 60.0; // no probe within this test
    BackendRouter router({"GCoD", "HyGCN"}, health);

    router.recordFailure(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    router.recordFailure(1);
    EXPECT_EQ(router.healthyCount(), 0);

    // Routing must never hard-fail: with every breaker open the
    // least-recently-tripped backend is drafted back in.
    RouteDecision d = router.choose(*bundle);
    EXPECT_EQ(d.backend, 0);

    // Latency traffic never rides a probe while healthy chips exist,
    // but with none left it takes the forced pick too.
    RouteDecision lat = router.choose(*bundle, SloTier::Latency);
    EXPECT_GE(lat.backend, 0);
}

// ------------------------------------------------------ shard re-execution
TEST(ShardFaultTest, HaloDropsRecoverBitIdenticallyFp32)
{
    Rng rng(7);
    std::vector<int> labels;
    Graph g = degreeCorrectedSbm(400, 2000, 4, 0.9, 2.6, labels, rng);
    GraphContext ctx(g);
    Rng mrng(11);
    auto model = makeModel("GCN", 16, 5, false, mrng);
    Matrix x(g.numNodes(), 16);
    x.glorotInit(mrng);

    shard::ShardPlanOptions popts;
    popts.shards = 3;
    shard::ShardPlan plan = shard::buildShardPlan(g, popts);
    shard::ShardedModel m = shard::shardedModelFor(*model, ctx);

    Matrix clean = shard::shardedForward(plan, m, x);

    // Drop every halo payload: every (layer, shard) attempt is discarded
    // and re-executed, and the stitch must still be bit-identical.
    FaultConfig cfg;
    cfg.seed = 5;
    cfg.haloDropRate = 1.0;
    FaultPlan faults(cfg);
    shard::ShardExecStats stats;
    Matrix drilled = shard::shardedForward(plan, m, x, &faults, &stats);

    EXPECT_TRUE(bitIdentical(clean, drilled))
        << "maxAbsDiff=" << Matrix::maxAbsDiff(clean, drilled);
    uint64_t cells = m.recipe.layers.size() * uint64_t(plan.numShards);
    EXPECT_EQ(stats.haloDrops, cells);
    EXPECT_EQ(stats.reexecutions, cells);
    EXPECT_EQ(faults.injectedCount(FaultKind::HaloDrop), cells);
}

TEST(ShardFaultTest, QuantizedRecoveryBitIdenticalAtAnyThreadCount)
{
    GcodOptions gopts;
    auto bundle = buildArtifact(
        ArtifactKey{"Cora", "GCN", hashGcodOptions(gopts)}, gopts,
        /*scale=*/0.25, /*seed=*/7, /*shards=*/2, /*shard_min_nodes=*/1,
        /*quant_bits=*/{8});
    ASSERT_NE(bundle->sharded, nullptr);
    ASSERT_EQ(bundle->quantized.count(8), 1u);
    const QuantizedGnn &q = bundle->quantized.at(8);

    Matrix clean = shard::quantizedShardedForward(bundle->sharded->plan, q,
                                                  bundle->hostFeatures);

    // Pin the seed: this test wants a *partial* drop pattern that is
    // provably nonempty, and an unlucky sweep seed over the small
    // (layer, shard) grid at rate 0.5 could legitimately drop nothing.
    ScopedFaultSeedEnv env(nullptr);
    FaultConfig cfg;
    cfg.seed = 13;
    cfg.haloDropRate = 0.5;

    // FaultPlan owns a mutex (not movable), so keep one per thread count.
    FaultPlan plan1(cfg), plan4(cfg);
    int before = currentThreads();
    setThreads(1);
    shard::ShardExecStats stats1;
    Matrix out1 = shard::quantizedShardedForward(
        bundle->sharded->plan, q, bundle->hostFeatures, &plan1, &stats1);
    setThreads(4);
    shard::ShardExecStats stats4;
    Matrix out4 = shard::quantizedShardedForward(
        bundle->sharded->plan, q, bundle->hostFeatures, &plan4, &stats4);
    setThreads(before);
    EXPECT_EQ(stats1.haloDrops, plan1.injectedCount(FaultKind::HaloDrop));
    EXPECT_EQ(stats4.haloDrops, plan4.injectedCount(FaultKind::HaloDrop));

    // Same seed => same injected (layer, shard) set at 1 and 4 threads,
    // and recovery keeps the integer stitch bit-identical throughout.
    EXPECT_GT(plan1.injectedCount(), 0u);
    EXPECT_EQ(plan1.trace(), plan4.trace());
    EXPECT_TRUE(bitIdentical(clean, out1));
    EXPECT_TRUE(bitIdentical(clean, out4));
}

// --------------------------------------------------------- engine recovery
namespace {

ServeOptions
faultEngineOptions()
{
    ServeOptions opts;
    opts.backends = {"GCoD", "HyGCN"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    opts.artifactSeed = 11;
    opts.batching.policy = BatchPolicy::FixedSize;
    opts.batching.maxBatch = 4;
    // Cooldown 0: probe eligibility never depends on wall-clock timing,
    // so recovery decisions replay exactly under a fixed seed.
    opts.health.tripThreshold = 2;
    opts.health.cooldownSeconds = 0.0;
    opts.retry.maxAttempts = 6;
    opts.retry.backoffBaseSeconds = 1e-5;
    opts.retry.backoffMaxSeconds = 1e-4;
    return opts;
}

/** Per-reply recovery decisions, for cross-run comparison. */
struct RecoveryTrace
{
    std::vector<std::string> backends;
    std::vector<int> retries;
    std::vector<bool> failedOver;
    std::vector<int> predictions;

    bool
    operator==(const RecoveryTrace &o) const
    {
        return backends == o.backends && retries == o.retries &&
               failedOver == o.failedOver && predictions == o.predictions;
    }
};

} // namespace

TEST(EngineFaultTest, RetriesAndFailoverPreserveByteIdenticalLogits)
{
    ServeOptions opts = faultEngineOptions();

    // Fault-free baseline.
    ServingEngine baseline(opts);
    std::vector<int> cleanPred;
    {
        std::vector<std::future<InferenceReply>> futures;
        for (int i = 0; i < 24; ++i)
            futures.push_back(
                baseline.submit({0, "Cora", "GCN", NodeId(i % 8)}));
        baseline.drain();
        for (auto &f : futures) {
            InferenceReply r = f.get();
            ASSERT_TRUE(r.ok()) << r.error;
            cleanPred.push_back(r.prediction);
        }
    }

    // Same traffic under a 30% injected backend failure rate (plus
    // latency spikes): recovery may retry and fail over, but every
    // completed reply must match the fault-free run exactly.
    opts.fault.seed = 3;
    opts.fault.backendFailRate = 0.3;
    opts.fault.backendSlowRate = 0.2;
    ServingEngine engine(opts);
    std::vector<std::future<InferenceReply>> futures;
    for (int i = 0; i < 24; ++i)
        futures.push_back(engine.submit({0, "Cora", "GCN", NodeId(i % 8)}));
    engine.drain();

    size_t completed = 0, failed = 0;
    int retried = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
        ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
                  std::future_status::ready)
            << "request dropped under injected faults";
        InferenceReply r = futures[i].get();
        EXPECT_FALSE(r.shed);
        EXPECT_FALSE(r.timedOut);
        if (!r.ok()) {
            ++failed; // retry budget exhausted: loud, never wrong
            continue;
        }
        ++completed;
        retried += r.retries;
        EXPECT_EQ(r.prediction, cleanPred[i])
            << "recovered reply diverged from the fault-free run";
    }
    EXPECT_EQ(completed + failed, futures.size());
    EXPECT_EQ(engine.stats().completed(), completed);
    EXPECT_EQ(engine.stats().failed(), failed);
    EXPECT_EQ(engine.pending(), 0u);

    // The drill must have actually drilled, and retries must show up in
    // the stats taxonomy exactly as often as the replies claim.
    EXPECT_GT(engine.faultPlan().injectedCount(), 0u);
    EXPECT_EQ(engine.stats().retried() > 0, retried > 0);

    // Byte-identity oracle: the logits the faulted engine serves from
    // are memcmp-equal to the baseline engine's.
    ArtifactKey k = engine.keyFor("Cora", "GCN");
    auto cleanLogits = baseline.peekLogits(k, 32);
    auto drillLogits = engine.peekLogits(k, 32);
    ASSERT_NE(cleanLogits, nullptr);
    ASSERT_NE(drillLogits, nullptr);
    EXPECT_TRUE(bitIdentical(*cleanLogits, *drillLogits));
}

TEST(EngineFaultTest, SameSeedReplaysTheSameFaultsAndRecovery)
{
    auto run = [] {
        ServeOptions opts = faultEngineOptions();
        opts.fault.seed = 17;
        opts.fault.backendFailRate = 0.4;
        opts.fault.backendSlowRate = 0.25;
        ServingEngine engine(opts);

        RecoveryTrace t;
        // Phase-by-phase drains pin batch composition, so the draw
        // sequence at each backend site replays exactly.
        for (int phase = 0; phase < 6; ++phase) {
            std::vector<std::future<InferenceReply>> futures;
            for (int i = 0; i < 4; ++i)
                futures.push_back(
                    engine.submit({0, "Cora", "GCN", NodeId(i)}));
            engine.drain();
            for (auto &f : futures) {
                InferenceReply r = f.get();
                t.backends.push_back(r.backend);
                t.retries.push_back(r.retries);
                t.failedOver.push_back(r.failedOver);
                t.predictions.push_back(r.ok() ? r.prediction : -1);
            }
        }
        return std::make_pair(t, engine.faultPlan().trace());
    };

    auto [traceA, faultsA] = run();
    auto [traceB, faultsB] = run();
    EXPECT_GT(faultsA.size(), 0u);
    EXPECT_EQ(faultsA, faultsB) << "injected fault trace not replayable";
    EXPECT_TRUE(traceA == traceB) << "recovery decisions not replayable";
}

TEST(EngineFaultTest, DeadlinesResolveAsTimeoutsNeverDrops)
{
    ServeOptions opts = faultEngineOptions();
    opts.backends = {"GCoD"}; // nowhere to fail over
    opts.fault.seed = 1;
    opts.fault.backendFailRate = 1.0; // every attempt fails
    opts.retry.maxAttempts = 1000;
    opts.retry.backoffBaseSeconds = 2e-3;
    opts.retry.backoffMaxSeconds = 8e-3;
    opts.defaultTimeoutSeconds = 0.03;
    ServingEngine engine(opts);

    std::vector<std::future<InferenceReply>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(engine.submit({0, "Cora", "GCN", NodeId(i)}));
    engine.drain();

    for (auto &f : futures) {
        InferenceReply r = f.get();
        EXPECT_TRUE(r.timedOut);
        EXPECT_FALSE(r.ok());
        EXPECT_FALSE(r.error.empty());
    }
    EXPECT_EQ(engine.stats().timedOut(), 4u);
    EXPECT_EQ(engine.stats().tierTimedOut(SloTier::Standard), 4u);
    EXPECT_EQ(engine.stats().completed(), 0u);
    EXPECT_EQ(engine.pending(), 0u);

    // A per-request deadline overrides the engine default the same way.
    // (FixedSize batching never flushes a partial batch on its own, so
    // drain before collecting the reply.)
    InferenceRequest req{0, "Cora", "GCN", 0};
    req.timeoutSeconds = 0.02;
    auto f = engine.submit(std::move(req));
    engine.drain();
    InferenceReply r = f.get();
    EXPECT_TRUE(r.timedOut);
}

TEST(EngineFaultTest, InjectedStoreCorruptionQuarantinesAndRepublishes)
{
    std::string dir = scratchDir("inject_store");
    ServeOptions opts = faultEngineOptions();
    opts.storeDir = dir;

    // Warm the store with a clean artifact.
    ServingEngine warm(opts);
    auto warmFuture = warm.submit({0, "Cora", "GCN", 3});
    warm.drain();
    InferenceReply clean = warmFuture.get();
    ASSERT_TRUE(clean.ok()) << clean.error;
    ArtifactKey k = warm.keyFor("Cora", "GCN");
    std::string path = store::artifactStorePath(dir, k);
    ASSERT_TRUE(std::filesystem::exists(path));
    warm.shutdown();

    // A new engine whose store reads are injected-corrupt must
    // quarantine the file, rebuild from scratch, republish, and still
    // serve the same answer.
    opts.fault.seed = 2;
    opts.fault.storeCorruptRate = 1.0;
    ServingEngine engine(opts);
    auto future = engine.submit({0, "Cora", "GCN", 3});
    engine.drain();
    InferenceReply r = future.get();
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.prediction, clean.prediction);
    EXPECT_EQ(engine.stats().quarantined(), 1u);
    EXPECT_EQ(engine.faultPlan().injectedCount(FaultKind::StoreCorrupt), 1u);
    EXPECT_TRUE(std::filesystem::exists(store::quarantinePath(path)));
    EXPECT_TRUE(std::filesystem::exists(path)) << "rebuild not republished";
}
