/**
 * @file
 * Tests for the degree classifier and the METIS-like multilevel
 * partitioner: coverage, balance, and cut quality.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "graph/generate.hpp"
#include "partition/degree_classes.hpp"
#include "partition/metis_lite.hpp"
#include "sim/rng.hpp"

using namespace gcod;

// --------------------------------------------------------- degree classes
TEST(DegreeClasses, ExplicitThresholds)
{
    // Star graph: hub degree 4, leaves degree 1.
    Graph g(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
    DegreeClasses dc = classifyByThresholds(g, {3});
    EXPECT_EQ(dc.numClasses, 2);
    EXPECT_EQ(dc.classOf[0], 1); // hub above threshold
    for (NodeId v = 1; v < 5; ++v)
        EXPECT_EQ(dc.classOf[size_t(v)], 0);
    EXPECT_EQ(dc.classSizes[0], 4);
    EXPECT_EQ(dc.classSizes[1], 1);
}

TEST(DegreeClasses, ThresholdsMustAscend)
{
    Graph g(3, {{0, 1}});
    EXPECT_THROW(classifyByThresholds(g, {5, 2}), std::logic_error);
}

TEST(DegreeClasses, BalancedSplitsDegreeMass)
{
    Rng rng(1);
    Graph g = barabasiAlbert(2000, 4, rng);
    DegreeClasses dc = classifyBalanced(g, 3);
    EXPECT_GE(dc.numClasses, 2);
    // Each class's degree mass within a loose factor of the mean share.
    std::vector<double> mass(size_t(dc.numClasses), 0.0);
    double total = 0.0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        mass[size_t(dc.classOf[size_t(v)])] += g.degrees()[size_t(v)];
        total += g.degrees()[size_t(v)];
    }
    for (double m : mass)
        EXPECT_GT(m, total / double(dc.numClasses) / 6.0);
}

TEST(DegreeClasses, ClassesAreMonotoneInDegree)
{
    Rng rng(2);
    Graph g = barabasiAlbert(500, 3, rng);
    DegreeClasses dc = classifyBalanced(g, 4);
    // A node in a higher class never has lower degree than one in a
    // strictly lower class's upper threshold.
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        for (NodeId v = 0; v < g.numNodes(); ++v) {
            if (dc.classOf[size_t(u)] < dc.classOf[size_t(v)]) {
                EXPECT_LE(g.degrees()[size_t(u)],
                          g.degrees()[size_t(v)]);
            }
        }
    }
}

TEST(DegreeClasses, SingleClassTrivial)
{
    Graph g(4, {{0, 1}, {2, 3}});
    DegreeClasses dc = classifyBalanced(g, 1);
    EXPECT_EQ(dc.numClasses, 1);
    for (int c : dc.classOf)
        EXPECT_EQ(c, 0);
}

// --------------------------------------------------------------- metis-lite
TEST(MetisLite, CoversAllNodesWithValidParts)
{
    Rng rng(3);
    Graph g = erdosRenyi(300, 900, rng);
    PartitionResult pr = partitionGraph(g, 4);
    EXPECT_EQ(pr.partOf.size(), 300u);
    for (int p : pr.partOf) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, 4);
    }
    // All parts nonempty on a connected-ish random graph.
    std::vector<int> sizes(4, 0);
    for (int p : pr.partOf)
        sizes[size_t(p)] += 1;
    for (int s : sizes)
        EXPECT_GT(s, 0);
}

TEST(MetisLite, SinglePartIsIdentity)
{
    Rng rng(4);
    Graph g = erdosRenyi(50, 100, rng);
    PartitionResult pr = partitionGraph(g, 1);
    EXPECT_EQ(pr.edgeCut, 0);
    for (int p : pr.partOf)
        EXPECT_EQ(p, 0);
}

TEST(MetisLite, CutBeatsRandomAssignment)
{
    Rng rng(5);
    // Two planted communities joined by few edges: the partitioner should
    // find a cut close to the planted one, far below random (~half edges).
    std::vector<int> labels;
    Graph g = degreeCorrectedSbm(400, 2400, 2, 0.95, 2.8, labels, rng);
    PartitionResult pr = partitionGraph(g, 2);
    std::vector<int> random_part(400);
    for (auto &p : random_part)
        p = int(rng.uniformInt(0, 1));
    EdgeOffset random_cut = computeEdgeCut(g, random_part);
    EXPECT_LT(pr.edgeCut, random_cut / 2);
}

TEST(MetisLite, RespectsBalanceFactor)
{
    Rng rng(6);
    Graph g = erdosRenyi(500, 2000, rng);
    PartitionOptions opts;
    opts.balanceFactor = 1.15;
    PartitionResult pr = partitionGraph(g, 4, {}, opts);
    double target = 500.0 / 4.0;
    for (double w : pr.partWeights)
        EXPECT_LE(w, target * opts.balanceFactor * 1.35 + 1.0);
}

TEST(MetisLite, WeightedBalanceUsesVertexWeights)
{
    Rng rng(7);
    Graph g = erdosRenyi(200, 600, rng);
    std::vector<double> weights(200, 1.0);
    // A handful of very heavy nodes must spread across parts.
    for (int i = 0; i < 4; ++i)
        weights[size_t(i * 50)] = 50.0;
    PartitionResult pr = partitionGraph(g, 4, weights);
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    for (double w : pr.partWeights)
        EXPECT_LT(w, total * 0.6);
}

TEST(MetisLite, EdgelessGraphStillPartitions)
{
    Graph g(40, {});
    PartitionResult pr = partitionGraph(g, 4);
    EXPECT_EQ(pr.edgeCut, 0);
    for (int p : pr.partOf) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, 4);
    }
}

TEST(MetisLite, DeterministicForFixedSeed)
{
    Rng rng(8);
    Graph g = erdosRenyi(150, 450, rng);
    PartitionOptions opts;
    opts.seed = 99;
    PartitionResult a = partitionGraph(g, 3, {}, opts);
    PartitionResult b = partitionGraph(g, 3, {}, opts);
    EXPECT_EQ(a.partOf, b.partOf);
    EXPECT_EQ(a.edgeCut, b.edgeCut);
}

TEST(ComputeEdgeCut, CountsCrossEdgesOnce)
{
    Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
    EXPECT_EQ(computeEdgeCut(g, {0, 0, 1, 1}), 1);
    EXPECT_EQ(computeEdgeCut(g, {0, 1, 0, 1}), 3);
    EXPECT_EQ(computeEdgeCut(g, {0, 0, 0, 0}), 0);
}

TEST(MetisLite, MorePartsThanNodes)
{
    Graph g(3, {{0, 1}, {1, 2}});
    PartitionResult pr = partitionGraph(g, 8);
    EXPECT_EQ(pr.parts, 8);
    EXPECT_EQ(pr.partOf.size(), 3u);
    ASSERT_EQ(pr.partWeights.size(), 8u);
    for (int p : pr.partOf) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, 8);
    }
    // 3 nodes cannot fill 8 parts: empty parts are reported, not
    // invented, and the achieved imbalance reflects the violation.
    double assigned = 0.0;
    for (double w : pr.partWeights)
        assigned += w;
    EXPECT_DOUBLE_EQ(assigned, 3.0);
    EXPECT_GE(pr.maxImbalance, 8.0 / 3.0 - 1e-9);
    EXPECT_FALSE(pr.withinBalance());
}

TEST(MetisLite, EmptyGraphManyParts)
{
    Graph g(0, {});
    PartitionResult pr = partitionGraph(g, 4);
    EXPECT_EQ(pr.parts, 4);
    EXPECT_TRUE(pr.partOf.empty());
    EXPECT_EQ(pr.edgeCut, 0);
    EXPECT_DOUBLE_EQ(pr.maxImbalance, 0.0);
    EXPECT_TRUE(pr.withinBalance());
}

TEST(MetisLite, SingleNodeParts)
{
    // Exactly one node per part: a perfectly balanced edge case.
    Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
    PartitionResult pr = partitionGraph(g, 4);
    std::vector<int> seen(4, 0);
    for (int p : pr.partOf)
        seen[size_t(p)] += 1;
    for (int s : seen)
        EXPECT_EQ(s, 1);
    EXPECT_DOUBLE_EQ(pr.maxImbalance, 1.0);
    EXPECT_TRUE(pr.withinBalance());
}

TEST(MetisLite, BalanceViolationIsReportedNotHidden)
{
    // One indivisible vertex heavier than the whole balance budget:
    // no assignment can satisfy the factor, so the result must carry
    // the achieved imbalance instead of pretending it held.
    Rng rng(9);
    Graph g = erdosRenyi(100, 300, rng);
    std::vector<double> weights(100, 1.0);
    weights[0] = 500.0;
    PartitionOptions opts;
    opts.balanceFactor = 1.05;
    PartitionResult pr = partitionGraph(g, 4, weights, opts);
    EXPECT_DOUBLE_EQ(pr.balanceFactorUsed, 1.05);
    EXPECT_GT(pr.maxImbalance, 1.05);
    EXPECT_FALSE(pr.withinBalance());
    // The heavy vertex's part dominates exactly as reported.
    double total = 599.0, ideal = total / 4.0;
    double max_w = *std::max_element(pr.partWeights.begin(),
                                     pr.partWeights.end());
    EXPECT_DOUBLE_EQ(pr.maxImbalance, max_w / ideal);
}

TEST(MetisLite, AchievableBalanceIsReportedWithin)
{
    Rng rng(10);
    Graph g = erdosRenyi(400, 1600, rng);
    PartitionOptions opts;
    opts.balanceFactor = 1.25;
    PartitionResult pr = partitionGraph(g, 4, {}, opts);
    EXPECT_GT(pr.maxImbalance, 0.0);
    EXPECT_TRUE(pr.withinBalance())
        << "achieved imbalance " << pr.maxImbalance;
}

TEST(MetisLite, DisconnectedGraphStaysBalanced)
{
    // Many small components (and isolated nodes): region growing must
    // reseed instead of dumping the remainder into the last part.
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId i = 0; i < 100; ++i)
        edges.push_back({NodeId(2 * i), NodeId(2 * i + 1)});
    Graph g(250, edges); // 100 dumbbells + 50 isolated nodes
    PartitionResult pr = partitionGraph(g, 5);
    for (double w : pr.partWeights)
        EXPECT_LE(w, 250.0 / 5.0 * 1.5);
    EXPECT_LE(pr.maxImbalance, 1.5);
}

class MetisParts : public ::testing::TestWithParam<int>
{};

TEST_P(MetisParts, BalanceAndCoverageAcrossK)
{
    int k = GetParam();
    Rng rng(static_cast<uint64_t>(k));
    Graph g = barabasiAlbert(600, 3, rng);
    std::vector<double> weights(600);
    for (NodeId v = 0; v < 600; ++v)
        weights[size_t(v)] = double(g.degrees()[size_t(v)]) + 1.0;
    PartitionResult pr = partitionGraph(g, k, weights);
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    int nonempty = 0;
    for (double w : pr.partWeights)
        nonempty += w > 0.0;
    EXPECT_GE(nonempty, std::max(1, k - 1));
    // No part grossly overloaded (power-law graphs are hard; allow 2x).
    for (double w : pr.partWeights)
        EXPECT_LE(w, total / double(k) * 2.5);
}

INSTANTIATE_TEST_SUITE_P(KSweep, MetisParts,
                         ::testing::Values(2, 3, 4, 6, 8, 12));
