/**
 * @file
 * SLO-tier tests: priority-ordered dequeue with the starvation guard,
 * per-tier depth accounting, tier-aware routing, admission control that
 * sheds the cheapest tier first, and the shed-vs-completed stats split.
 */
#include <gtest/gtest.h>

#include "serve/engine.hpp"

using namespace gcod;
using namespace gcod::serve;

namespace {

ArtifactKey
key(const std::string &dataset)
{
    return ArtifactKey{dataset, "GCN", 7};
}

PendingRequest
pending(const std::string &dataset, uint64_t id, SloTier tier)
{
    PendingRequest p;
    p.req.id = id;
    p.req.dataset = dataset;
    p.req.tier = tier;
    p.key = key(dataset);
    p.enqueued = Clock::now();
    return p;
}

void
push(BatchQueue &q, PendingRequest r)
{
    EXPECT_TRUE(q.push(r));
}

} // namespace

// ------------------------------------------------------------------- queue
TEST(SloQueueTest, LatencyBeatsStandardBeatsBestEffort)
{
    BatchOptions opts;
    opts.policy = BatchPolicy::FixedSize;
    opts.maxBatch = 2;
    opts.starvationLimit = std::chrono::microseconds(10'000'000);
    BatchQueue q(opts);

    // Enqueue in worst-first order; full groups are all ready at once.
    push(q, pending("Cora", 1, SloTier::BestEffort));
    push(q, pending("Cora", 2, SloTier::BestEffort));
    push(q, pending("Cora", 3, SloTier::Standard));
    push(q, pending("Cora", 4, SloTier::Standard));
    push(q, pending("Cora", 5, SloTier::Latency));
    push(q, pending("Cora", 6, SloTier::Latency));

    EXPECT_EQ(q.tierDepth(SloTier::Latency), 2u);
    EXPECT_EQ(q.tierDepth(SloTier::Standard), 2u);
    EXPECT_EQ(q.tierDepth(SloTier::BestEffort), 2u);

    auto b1 = q.pop();
    auto b2 = q.pop();
    auto b3 = q.pop();
    ASSERT_TRUE(b1 && b2 && b3);
    EXPECT_EQ(b1->tier, SloTier::Latency);
    EXPECT_EQ(b2->tier, SloTier::Standard);
    EXPECT_EQ(b3->tier, SloTier::BestEffort);
    EXPECT_EQ(b1->requests[0].req.id, 5u);
    EXPECT_EQ(q.tierDepth(SloTier::BestEffort), 0u);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(SloQueueTest, StarvationGuardPromotesOldLowTierWork)
{
    BatchOptions opts;
    opts.policy = BatchPolicy::FixedSize;
    opts.maxBatch = 1;
    // Zero limit: everything is immediately "starved", so dequeue
    // degenerates to oldest-first FIFO regardless of tier.
    opts.starvationLimit = std::chrono::microseconds(0);
    BatchQueue q(opts);

    push(q, pending("Cora", 1, SloTier::BestEffort));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    push(q, pending("Cora", 2, SloTier::Latency));

    auto first = q.pop();
    ASSERT_TRUE(first);
    EXPECT_EQ(first->tier, SloTier::BestEffort)
        << "starved best-effort work must outrank fresh latency work";
    auto second = q.pop();
    ASSERT_TRUE(second);
    EXPECT_EQ(second->tier, SloTier::Latency);
}

TEST(SloQueueTest, TiersNeverShareABatch)
{
    BatchOptions opts;
    opts.policy = BatchPolicy::FixedSize;
    opts.maxBatch = 8;
    BatchQueue q(opts);
    push(q, pending("Cora", 1, SloTier::Latency));
    push(q, pending("Cora", 2, SloTier::BestEffort));
    q.flush();
    auto b1 = q.pop();
    auto b2 = q.pop();
    ASSERT_TRUE(b1 && b2);
    EXPECT_EQ(b1->requests.size(), 1u);
    EXPECT_EQ(b2->requests.size(), 1u);
    EXPECT_NE(b1->tier, b2->tier);
}

// ------------------------------------------------------------------ router
TEST(SloRouterTest, BestEffortAvoidsTheFastestBackend)
{
    GcodOptions gopts;
    auto bundle = buildArtifact(
        ArtifactKey{"Cora", "GCN", hashGcodOptions(gopts)}, gopts, 0.25);
    BackendRouter router({"GCoD", "HyGCN"});

    RouteDecision latency = router.choose(*bundle, SloTier::Latency);
    RouteDecision standard = router.choose(*bundle, SloTier::Standard);
    RouteDecision effort = router.choose(*bundle, SloTier::BestEffort);
    ASSERT_GE(latency.backend, 0);
    ASSERT_GE(effort.backend, 0);
    // Idle router: latency and standard both race to the cheapest
    // estimate, best-effort is explicitly kept off it.
    EXPECT_EQ(latency.backend, standard.backend);
    EXPECT_NE(effort.backend, latency.backend);
}

// ------------------------------------------------------------------- stats
TEST(SloStatsTest, ShedRequestsDoNotPollutePercentiles)
{
    ServerStats stats;

    InferenceReply shed;
    shed.id = 1;
    shed.tier = SloTier::BestEffort;
    shed.shed = true;
    shed.error = "shed by admission control";
    shed.latencySeconds = 42.0; // must be ignored
    stats.recordReply(shed);

    InferenceReply ok;
    ok.id = 2;
    ok.tier = SloTier::Standard;
    ok.latencySeconds = 0.125;
    stats.recordReply(ok);

    InferenceReply failed;
    failed.id = 3;
    failed.error = "boom";
    stats.recordReply(failed);

    EXPECT_EQ(stats.completed(), 1u);
    EXPECT_EQ(stats.failed(), 1u);
    EXPECT_EQ(stats.shed(), 1u);
    EXPECT_EQ(stats.tierShed(SloTier::BestEffort), 1u);
    EXPECT_EQ(stats.tierCompleted(SloTier::Standard), 1u);
    EXPECT_EQ(stats.tierCompleted(SloTier::BestEffort), 0u);
    // The 42 s shed "latency" must not appear anywhere.
    EXPECT_DOUBLE_EQ(stats.latencyPercentile(99.0), 0.125);
    EXPECT_DOUBLE_EQ(stats.tierLatencyPercentile(SloTier::Standard, 50.0),
                     0.125);
    EXPECT_DOUBLE_EQ(
        stats.tierLatencyPercentile(SloTier::BestEffort, 99.0), 0.0);
}

TEST(SloStatsTest, FailureTaxonomyOutcomesAreDisjointAndTierScoped)
{
    ServerStats stats;

    InferenceReply shed;
    shed.tier = SloTier::BestEffort;
    shed.shed = true;
    shed.error = "shed by admission control";
    stats.recordReply(shed);

    InferenceReply timed;
    timed.tier = SloTier::Standard;
    timed.timedOut = true;
    timed.error = "deadline exceeded";
    timed.latencySeconds = 9.0; // must not reach the percentiles
    stats.recordReply(timed);

    InferenceReply failed;
    failed.tier = SloTier::Latency;
    failed.error = "boom";
    stats.recordReply(failed);

    InferenceReply recovered;
    recovered.tier = SloTier::Standard;
    recovered.retries = 2;
    recovered.failedOver = true;
    recovered.latencySeconds = 0.25;
    stats.recordReply(recovered);

    InferenceReply clean;
    clean.tier = SloTier::Standard;
    clean.latencySeconds = 0.5;
    stats.recordReply(clean);

    // Every reply landed in exactly one outcome bucket.
    EXPECT_EQ(stats.shed(), 1u);
    EXPECT_EQ(stats.timedOut(), 1u);
    EXPECT_EQ(stats.failed(), 1u);
    EXPECT_EQ(stats.completed(), 2u);
    // retried/failed_over annotate completed work; they are not
    // outcomes and must not double-count anything.
    EXPECT_EQ(stats.retried(), 1u);
    EXPECT_EQ(stats.failedOver(), 1u);

    // Tier-scoped views of the same taxonomy.
    EXPECT_EQ(stats.tierShed(SloTier::BestEffort), 1u);
    EXPECT_EQ(stats.tierTimedOut(SloTier::Standard), 1u);
    EXPECT_EQ(stats.tierTimedOut(SloTier::Latency), 0u);
    EXPECT_EQ(stats.tierFailed(SloTier::Latency), 1u);
    EXPECT_EQ(stats.tierFailed(SloTier::Standard), 0u);
    EXPECT_EQ(stats.tierRetried(SloTier::Standard), 1u);
    EXPECT_EQ(stats.tierFailedOver(SloTier::Standard), 1u);
    EXPECT_EQ(stats.tierCompleted(SloTier::Standard), 2u);

    // Neither the timed-out 9 s nor the shed request pollutes the
    // latency distribution of executed work.
    EXPECT_DOUBLE_EQ(stats.latencyPercentile(100.0), 0.5);

    // Recovery-event recorders land in their own scalars.
    stats.recordBackendFailure("GCoD");
    stats.recordBackendFailure("GCoD");
    stats.recordQuarantine();
    stats.recordShardReexecutions(3);
    stats.recordShardReexecutions(0); // no-op, not a sample
    EXPECT_EQ(stats.quarantined(), 1u);
    EXPECT_EQ(stats.shardReexecutions(), 3u);
}

// --------------------------------------------------------------- admission
TEST(SloAdmissionTest, ShedsCheapestTierFirstAtTheDoor)
{
    ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    // FixedSize with a huge target: nothing dispatches until drain(),
    // so queue depth at each submit is exact and the test deterministic.
    opts.batching.policy = BatchPolicy::FixedSize;
    opts.batching.maxBatch = 64;
    opts.admission.bestEffortMaxDepth = 2;
    opts.admission.standardMaxDepth = 4;
    opts.admission.maxQueueDepth = 6;
    ServingEngine engine(opts);

    auto submit = [&](SloTier tier) {
        InferenceRequest req;
        req.dataset = "Cora";
        req.tier = tier;
        return engine.submit(std::move(req));
    };

    std::vector<std::future<InferenceReply>> futures;
    // Depths 0,1 accepted; depth 2 hits bestEffortMaxDepth.
    for (int i = 0; i < 3; ++i)
        futures.push_back(submit(SloTier::BestEffort));
    // Depths 2,3 accepted; depth 4 hits standardMaxDepth.
    for (int i = 0; i < 3; ++i)
        futures.push_back(submit(SloTier::Standard));
    // Depths 4,5 accepted; depth 6 hits maxQueueDepth.
    for (int i = 0; i < 3; ++i)
        futures.push_back(submit(SloTier::Latency));

    engine.drain();

    int completedCount = 0, shedCount = 0;
    for (auto &f : futures) {
        InferenceReply r = f.get();
        if (r.shed)
            ++shedCount;
        else if (r.ok())
            ++completedCount;
    }
    EXPECT_EQ(completedCount, 6);
    EXPECT_EQ(shedCount, 3);
    EXPECT_EQ(engine.stats().completed(), 6u);
    EXPECT_EQ(engine.stats().shed(), 3u);
    EXPECT_EQ(engine.stats().tierShed(SloTier::BestEffort), 1u);
    EXPECT_EQ(engine.stats().tierShed(SloTier::Standard), 1u);
    EXPECT_EQ(engine.stats().tierShed(SloTier::Latency), 1u);
    EXPECT_EQ(engine.stats().tierCompleted(SloTier::Latency), 2u);
    // Shed futures resolve immediately with the tier echoed back.
}

TEST(SloAdmissionTest, DefaultsShedNothing)
{
    ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    opts.batching.maxDelay = std::chrono::microseconds(200);
    ServingEngine engine(opts);
    std::vector<std::future<InferenceReply>> futures;
    for (int i = 0; i < 32; ++i) {
        InferenceRequest req;
        req.dataset = "Cora";
        req.tier = i % 2 ? SloTier::BestEffort : SloTier::Latency;
        futures.push_back(engine.submit(std::move(req)));
    }
    engine.drain();
    for (auto &f : futures)
        EXPECT_TRUE(f.get().ok());
    EXPECT_EQ(engine.stats().shed(), 0u);
}
