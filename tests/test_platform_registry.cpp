/**
 * @file
 * Tests for the platform registry: alias resolution, spec-string
 * parameter parsing (good and malformed), unknown-name reporting,
 * descriptor-driven routing parity with the old name-prefix behavior,
 * and zero-edit registration of a platform from this translation unit.
 */
#include <gtest/gtest.h>

#include "accel/cpu_gpu.hpp"
#include "accel/registry.hpp"
#include "serve/backend_router.hpp"

using namespace gcod;
using namespace gcod::serve;

namespace {

/**
 * A platform registered HERE, in a test translation unit, with zero
 * edits anywhere else in the library — the registry's core promise.
 */
const PlatformRegistrar kTestChip{[] {
    PlatformDescriptor d;
    d.name = "TestChip-900";
    d.family = "test";
    d.summary = "synthetic platform registered by the unit test";
    d.phaseOrder = PhaseOrder::AggrThenComb;
    d.consumesWorkload = false;
    d.deviceClass = DeviceClass::Asic;
    // Default rank (1000) appends after the paper lineup, keeping the
    // built-ins' presentation order intact.
    PlatformConfig c;
    c.name = "TestChip-900";
    c.freqGHz = 0.9;
    c.numPEs = 900;
    c.onChipBytes = 1 << 20;
    c.offChipGBs = 100.0;
    c.boardPowerW = 9.0;
    d.defaultConfig = c;
    // Reinterpret the common `pes` key (the consume-first contract):
    // this chip packs PEs in pairs, so the spec counts pairs.
    d.configure = [](PlatformConfig &cfg, PlatformParams &p) {
        cfg.numPEs = 2.0 * p.takeDouble("pes", cfg.numPEs / 2.0);
    };
    d.build = [](PlatformConfig cfg) {
        return std::make_unique<FrameworkModel>(std::move(cfg));
    };
    return d;
}()};

std::shared_ptr<const ArtifactBundle>
coraBundle()
{
    static std::shared_ptr<const ArtifactBundle> bundle = [] {
        GcodOptions opts;
        return buildArtifact(
            ArtifactKey{"Cora", "GCN", hashGcodOptions(opts)}, opts, 0.25,
            11);
    }();
    return bundle;
}

} // namespace

// ------------------------------------------------------------- listing
TEST(PlatformRegistry, PreservesPaperPresentationOrder)
{
    const std::vector<std::string> paper = {
        "PyG-CPU", "PyG-GPU", "DGL-CPU",  "DGL-GPU",
        "HyGCN",   "AWB-GCN", "ZC706",    "KCU1500",
        "AlveoU50", "GCoD",   "GCoD(8-bit)"};
    std::vector<std::string> names = allPlatformNames();
    // The test platform registered above appends *after* the lineup.
    ASSERT_GE(names.size(), paper.size());
    for (size_t i = 0; i < paper.size(); ++i)
        EXPECT_EQ(names[i], paper[i]) << "position " << i;
    EXPECT_EQ(names.back(), "TestChip-900");
}

// ----------------------------------------------------------- resolution
TEST(PlatformRegistry, AliasResolvesToParameterizedBuild)
{
    const PlatformDescriptor &d = platformDescriptor("GCoD(8-bit)");
    EXPECT_EQ(d.name, "GCoD"); // canonical platform behind the alias
    auto m = makeAccelerator("GCoD(8-bit)");
    EXPECT_EQ(m->config().name, "GCoD(8-bit)");
    EXPECT_EQ(m->config().dataBits, 8);
    EXPECT_EQ(m->config().numPEs, 10240);
}

TEST(PlatformRegistry, SpecStringAppliesOverrides)
{
    auto m = makeAccelerator("GCoD@freq=0.5,onchip=16MiB,bits=8");
    EXPECT_EQ(m->config().name, "GCoD@freq=0.5,onchip=16MiB,bits=8");
    EXPECT_DOUBLE_EQ(m->config().freqGHz, 0.5);
    EXPECT_DOUBLE_EQ(m->config().onChipBytes, 16.0 * 1024 * 1024);
    EXPECT_EQ(m->config().dataBits, 8);
    // bits=8 picks the published 8-bit design point (Tab. V).
    EXPECT_EQ(m->config().numPEs, 10240);
}

TEST(PlatformRegistry, SpecOverridesComposeWithAliasOverrides)
{
    auto m = makeAccelerator("GCoD(8-bit)@freq=0.1");
    EXPECT_EQ(m->config().dataBits, 8);
    EXPECT_EQ(m->config().numPEs, 10240);
    EXPECT_DOUBLE_EQ(m->config().freqGHz, 0.1);
}

TEST(PlatformRegistry, CommonOverridesApplyToAnyPlatform)
{
    auto m = makeAccelerator("HyGCN@bw=512,pes=2048,bits=16,power=10");
    EXPECT_DOUBLE_EQ(m->config().offChipGBs, 512.0);
    EXPECT_DOUBLE_EQ(m->config().numPEs, 2048.0);
    EXPECT_EQ(m->config().dataBits, 16);
    EXPECT_DOUBLE_EQ(m->config().boardPowerW, 10.0);
    // Untouched fields keep the platform's defaults.
    EXPECT_DOUBLE_EQ(m->config().freqGHz, makeHyGcnConfig().freqGHz);
}

TEST(PlatformRegistry, DecimalAndBinaryByteSuffixes)
{
    EXPECT_DOUBLE_EQ(makeAccelerator("GCoD@onchip=21MB")->config().onChipBytes,
                     21e6);
    EXPECT_DOUBLE_EQ(
        makeAccelerator("GCoD@onchip=2GiB")->config().onChipBytes,
        2.0 * 1024 * 1024 * 1024);
}

// --------------------------------------------------------------- errors
TEST(PlatformRegistry, MalformedSpecsAreUserErrors)
{
    EXPECT_THROW(makeAccelerator("GCoD@"), std::runtime_error);
    EXPECT_THROW(makeAccelerator("GCoD@freq"), std::runtime_error);
    EXPECT_THROW(makeAccelerator("GCoD@freq="), std::runtime_error);
    EXPECT_THROW(makeAccelerator("GCoD@=1"), std::runtime_error);
    EXPECT_THROW(makeAccelerator("GCoD@freq=fast"), std::runtime_error);
    EXPECT_THROW(makeAccelerator("GCoD@onchip=16Qi"), std::runtime_error);
    EXPECT_THROW(makeAccelerator("GCoD@bits=13"), std::runtime_error);
    EXPECT_THROW(makeAccelerator("GCoD@bits=8,bits=32"),
                 std::runtime_error);
    EXPECT_THROW(makeAccelerator("GCoD@freq=-1"), std::runtime_error);
    EXPECT_THROW(makeAccelerator("HyGCN@sparse_eff=1.5"),
                 std::runtime_error);
}

TEST(PlatformRegistry, UnknownKeyNamesTheSupportedOnes)
{
    try {
        makeAccelerator("GCoD@nope=1");
        FAIL() << "expected a runtime_error";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("nope"), std::string::npos);
        EXPECT_NE(msg.find("freq"), std::string::npos);
        EXPECT_NE(msg.find("onchip"), std::string::npos);
    }
}

TEST(PlatformRegistry, UnknownPlatformListsRegistryAndSuggests)
{
    try {
        makeAccelerator("HyGNC"); // transposition typo
        FAIL() << "expected a runtime_error";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown platform 'HyGNC'"), std::string::npos);
        EXPECT_NE(msg.find("AWB-GCN"), std::string::npos); // the full list
        EXPECT_NE(msg.find("did you mean 'HyGCN'"), std::string::npos);
    }
}

TEST(PlatformRegistry, ContainsAcceptsNamesAliasesAndSpecs)
{
    PlatformRegistry &r = PlatformRegistry::instance();
    EXPECT_TRUE(r.contains("GCoD"));
    EXPECT_TRUE(r.contains("GCoD(8-bit)"));
    EXPECT_TRUE(r.contains("GCoD@bits=8"));
    EXPECT_TRUE(r.contains("TestChip-900"));
    EXPECT_FALSE(r.contains("NoSuchChip"));
    EXPECT_FALSE(r.contains("NoSuchChip@freq=1"));
    // Malformed override lists don't "contain" either (no stderr spam).
    EXPECT_FALSE(r.contains("GCoD@"));
    EXPECT_FALSE(r.contains("GCoD@freq"));
    EXPECT_FALSE(r.contains("GCoD@bits=8,bits=32"));
}

// --------------------------------------------------- descriptor queries
TEST(PlatformRegistry, CapabilitiesMatchLegacyNameRules)
{
    // Parity with the retired string matching: only the GCoD family
    // consumed the workload descriptor, and only HyGCN aggregated first.
    for (const auto &name : allPlatformNames()) {
        const PlatformDescriptor &d = platformDescriptor(name);
        bool legacy_gcod = name.rfind("GCoD", 0) == 0;
        EXPECT_EQ(d.consumesWorkload, legacy_gcod) << name;
        if (name.compare("TestChip-900") != 0) {
            bool legacy_aggr_first = name.compare("HyGCN") == 0;
            EXPECT_EQ(d.phaseOrder == PhaseOrder::AggrThenComb,
                      legacy_aggr_first)
                << name;
        }
    }
    EXPECT_EQ(platformDescriptor("GCoD@bits=8").name, "GCoD");
    EXPECT_TRUE(platformConsumesWorkload("GCoD@bits=8"));
}

TEST(PlatformRegistry, DescriptorMetadataIsComplete)
{
    for (const PlatformDescriptor *d :
         PlatformRegistry::instance().descriptors()) {
        EXPECT_FALSE(d->name.empty());
        EXPECT_FALSE(d->family.empty()) << d->name;
        EXPECT_FALSE(d->summary.empty()) << d->name;
        EXPECT_GT(d->defaultConfig.numPEs, 0.0) << d->name;
        EXPECT_GT(d->defaultConfig.freqGHz, 0.0) << d->name;
        EXPECT_STRNE(deviceClassName(d->deviceClass), "unknown") << d->name;
    }
}

// ---------------------------------------------------------- serving use
TEST(PlatformRegistry, RouterReadsCapabilitiesFromDescriptors)
{
    BackendRouter router({"GCoD", "GCoD@bits=8", "HyGCN"});
    EXPECT_TRUE(router.usesWorkload(0));
    EXPECT_TRUE(router.usesWorkload(1));
    EXPECT_FALSE(router.usesWorkload(2));
    EXPECT_EQ(router.descriptor(2).phaseOrder, PhaseOrder::AggrThenComb);
    EXPECT_EQ(router.name(1), "GCoD@bits=8");

    auto bundle = coraBundle();
    // The workload-consuming backends see the processed input.
    EXPECT_EQ(&router.inputFor(0, *bundle), &bundle->gcodIn);
    EXPECT_EQ(&router.inputFor(2, *bundle), &bundle->raw);
    // The 8-bit variant (2.5x PEs, half the traffic) can't be slower.
    EXPECT_LE(router.estimateSeconds(1, *bundle),
              router.estimateSeconds(0, *bundle));
    for (int i = 0; i < int(router.numBackends()); ++i)
        EXPECT_GT(router.estimateSeconds(i, *bundle), 0.0);
}

TEST(PlatformRegistry, TestTuPlatformIsConstructibleAndRoutable)
{
    auto m = makeAccelerator("TestChip-900");
    EXPECT_EQ(m->config().name, "TestChip-900");
    EXPECT_DOUBLE_EQ(m->config().numPEs, 900.0);

    // Spec-string parameterization works on it immediately, and the
    // family configure() hook shadows the generic `pes` treatment: a
    // key it consumed must not be re-applied by the common overrides.
    EXPECT_DOUBLE_EQ(makeAccelerator("TestChip-900@pes=128")
                         ->config()
                         .numPEs,
                     256.0);

    BackendRouter router({"TestChip-900"});
    RouteDecision d = router.choose(*coraBundle());
    EXPECT_EQ(d.backend, 0);
    EXPECT_EQ(d.name, "TestChip-900");
    EXPECT_GT(d.estimatedSeconds, 0.0);
}
