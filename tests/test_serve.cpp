/**
 * @file
 * Unit tests for the serving subsystem: artifact hashing, LRU cache
 * eviction/capacity/single-flight, batch-queue policies and deadline
 * flushing, deterministic routing, and a multi-threaded engine smoke
 * test.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "serve/engine.hpp"

using namespace gcod;
using namespace gcod::serve;

namespace {

ArtifactKey
key(const std::string &dataset)
{
    return ArtifactKey{dataset, "GCN", 7};
}

/** Cheap builder: real bundles are not needed for cache-policy tests. */
ArtifactCache::Builder
fakeBuilder(std::atomic<int> *builds = nullptr)
{
    return [builds](const ArtifactKey &k) {
        if (builds)
            builds->fetch_add(1);
        auto b = std::make_shared<ArtifactBundle>();
        b->key = k;
        b->buildSeconds = 0.001;
        return b;
    };
}

PendingRequest
pending(const std::string &dataset, uint64_t id)
{
    PendingRequest p;
    p.req.id = id;
    p.req.dataset = dataset;
    p.key = key(dataset);
    p.enqueued = Clock::now();
    return p;
}

void
push(BatchQueue &q, PendingRequest r)
{
    EXPECT_TRUE(q.push(r));
}

} // namespace

// ------------------------------------------------------------ options hash
TEST(ArtifactKeyTest, OptionsHashSeparatesConfigurations)
{
    GcodOptions a, b;
    EXPECT_EQ(hashGcodOptions(a), hashGcodOptions(b));
    b.polarize.pruneRatio = 0.2;
    EXPECT_NE(hashGcodOptions(a), hashGcodOptions(b));
    GcodOptions c;
    c.reorder.numClasses = 4;
    EXPECT_NE(hashGcodOptions(a), hashGcodOptions(c));
    GcodOptions d;
    d.model = "GAT";
    EXPECT_NE(hashGcodOptions(a), hashGcodOptions(d));
}

// -------------------------------------------------------------------- cache
TEST(ArtifactCacheTest, CapacityIsEnforced)
{
    ArtifactCache cache(2, fakeBuilder());
    cache.get(key("Cora"));
    cache.get(key("CiteSeer"));
    cache.get(key("Pubmed"));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(cache.contains(key("Cora")));
    EXPECT_TRUE(cache.contains(key("CiteSeer")));
    EXPECT_TRUE(cache.contains(key("Pubmed")));
}

TEST(ArtifactCacheTest, EvictsLeastRecentlyUsed)
{
    ArtifactCache cache(2, fakeBuilder());
    cache.get(key("Cora"));
    cache.get(key("CiteSeer"));
    // Touch Cora so CiteSeer becomes the LRU victim.
    EXPECT_TRUE(cache.get(key("Cora")).hit);
    cache.get(key("Pubmed"));
    EXPECT_TRUE(cache.contains(key("Cora")));
    EXPECT_FALSE(cache.contains(key("CiteSeer")));

    auto keys = cache.keysMruFirst();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0].dataset, "Pubmed");
    EXPECT_EQ(keys[1].dataset, "Cora");
}

TEST(ArtifactCacheTest, CountsHitsAndMisses)
{
    ArtifactCache cache(4, fakeBuilder());
    EXPECT_FALSE(cache.get(key("Cora")).hit);
    EXPECT_TRUE(cache.get(key("Cora")).hit);
    EXPECT_TRUE(cache.get(key("Cora")).hit);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 2.0 / 3.0);
    EXPECT_GT(cache.totalBuildSeconds(), 0.0);
}

TEST(ArtifactCacheTest, DifferentOptionsHashesAreDistinctEntries)
{
    ArtifactCache cache(4, fakeBuilder());
    cache.get(ArtifactKey{"Cora", "GCN", 1});
    EXPECT_FALSE(cache.get(ArtifactKey{"Cora", "GCN", 2}).hit);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ArtifactCacheTest, ConcurrentMissesBuildOnce)
{
    std::atomic<int> builds{0};
    ArtifactCache cache(4, fakeBuilder(&builds));
    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i)
        threads.emplace_back([&] { cache.get(key("Cora")); });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(cache.misses() + cache.hits(), 8u);
}

// -------------------------------------------------------------- batch queue
TEST(BatchQueueTest, FullBatchFlushesImmediately)
{
    BatchOptions opts;
    opts.policy = BatchPolicy::Timeout;
    opts.maxBatch = 4;
    opts.maxDelay = std::chrono::microseconds(60'000'000); // never fires
    BatchQueue q(opts);
    for (uint64_t i = 0; i < 4; ++i)
        push(q, pending("Cora", i + 1));
    auto batch = q.pop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 4u);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(BatchQueueTest, DeadlineFlushesPartialBatch)
{
    BatchOptions opts;
    opts.policy = BatchPolicy::Timeout;
    opts.maxBatch = 64;
    opts.maxDelay = std::chrono::microseconds(2000);
    BatchQueue q(opts);
    push(q, pending("Cora", 1));
    push(q, pending("Cora", 2));
    auto t0 = Clock::now();
    auto batch = q.pop(); // must return via the deadline, not batch size
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 2u);
    EXPECT_GE(Clock::now() - t0, std::chrono::microseconds(500));
}

TEST(BatchQueueTest, FixedSizeHoldsPartialUntilFlush)
{
    BatchOptions opts;
    opts.policy = BatchPolicy::FixedSize;
    opts.maxBatch = 8;
    BatchQueue q(opts);
    push(q, pending("Cora", 1));
    push(q, pending("Cora", 2));
    EXPECT_EQ(q.depth(), 2u);
    q.flush();
    auto batch = q.pop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 2u);
}

TEST(BatchQueueTest, FlushIsScopedToPreFlushBacklog)
{
    // Regression: a queue-wide flushing flag used to stay set until the
    // whole queue drained, so requests pushed after flush() were
    // dispatched immediately as tiny batches until the pre-flush
    // backlog cleared, defeating batching under sustained traffic.
    BatchOptions opts;
    opts.policy = BatchPolicy::FixedSize;
    opts.maxBatch = 4;
    BatchQueue q(opts);
    push(q, pending("Cora", 1));
    push(q, pending("Cora", 2));
    q.flush();
    for (uint64_t i = 3; i <= 7; ++i)
        push(q, pending("Cora", i));

    // The flush batch releases the pre-flush pair (riders may fill the
    // spare capacity), leaving post-flush leftovers queued.
    ASSERT_EQ(q.pop()->size(), 4u);
    EXPECT_EQ(q.depth(), 3u);

    // Those leftovers must wait for a full batch, not dispatch early.
    std::atomic<int> second_size{-1};
    std::thread popper([&] {
        auto b = q.pop();
        second_size = b ? int(b->size()) : 0;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(second_size.load(), -1)
        << "post-flush requests dispatched below the policy target";
    push(q, pending("Cora", 8));
    popper.join();
    EXPECT_EQ(second_size.load(), 4);
}

TEST(BatchQueueTest, BatchesAreHomogeneousPerArtifact)
{
    BatchOptions opts;
    opts.policy = BatchPolicy::FixedSize;
    opts.maxBatch = 3;
    BatchQueue q(opts);
    for (uint64_t i = 0; i < 3; ++i) {
        push(q, pending("Cora", 10 + i));
        push(q, pending("CiteSeer", 20 + i));
    }
    for (int b = 0; b < 2; ++b) {
        auto batch = q.pop();
        ASSERT_TRUE(batch.has_value());
        EXPECT_EQ(batch->size(), 3u);
        for (const auto &r : batch->requests)
            EXPECT_EQ(r.req.dataset, batch->key.dataset);
    }
}

TEST(BatchQueueTest, OversizedGroupSplitsAtMaxBatch)
{
    BatchOptions opts;
    opts.policy = BatchPolicy::FixedSize;
    opts.maxBatch = 4;
    BatchQueue q(opts);
    for (uint64_t i = 0; i < 10; ++i)
        push(q, pending("Cora", i + 1));
    EXPECT_EQ(q.pop()->size(), 4u);
    EXPECT_EQ(q.pop()->size(), 4u);
    q.flush();
    EXPECT_EQ(q.pop()->size(), 2u);
}

TEST(BatchQueueTest, CloseDrainsLeftoversThenEnds)
{
    BatchQueue q{BatchOptions{}};
    push(q, pending("Cora", 1));
    q.close();
    auto batch = q.pop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 1u);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BatchQueueTest, CloseDuringDeadlineWaitDrainsTheWholeBacklog)
{
    // Workers park in pop()'s timed wait (the deadline is a minute out);
    // close() must wake them and hand over the entire backlog — partial,
    // unexpired groups included — before pop() returns nullopt.
    BatchOptions opts;
    opts.policy = BatchPolicy::Timeout;
    opts.maxBatch = 8;
    opts.maxDelay = std::chrono::microseconds(60'000'000); // never fires
    BatchQueue q(opts);

    std::atomic<size_t> drained{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 3; ++w)
        workers.emplace_back([&] {
            while (auto b = q.pop())
                drained.fetch_add(b->size());
        });

    constexpr size_t kTotal = 50;
    for (uint64_t i = 0; i < kTotal; ++i)
        push(q, pending(i % 2 ? "Cora" : "CiteSeer", i + 1));
    // Give the workers a moment to park in the deadline wait, then pull
    // the plug mid-wait.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.close();
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(drained.load(), kTotal)
        << "shutdown dropped queued requests";
    EXPECT_EQ(q.depth(), 0u);
}

TEST(BatchQueueTest, PushAfterCloseIsRejected)
{
    BatchQueue q{BatchOptions{}};
    q.close();
    PendingRequest p = pending("Cora", 1);
    EXPECT_FALSE(q.push(p));
}

TEST(BatchQueueTest, AdaptiveTargetTracksBacklog)
{
    BatchOptions opts;
    opts.policy = BatchPolicy::Adaptive;
    opts.maxBatch = 16;
    opts.adaptiveMin = 2;
    opts.maxDelay = std::chrono::microseconds(60'000'000);
    BatchQueue q(opts);
    // Backlog of 12 -> target clamp(12/2) = 6: pop must not wait for 16.
    for (uint64_t i = 0; i < 12; ++i)
        push(q, pending("Cora", i + 1));
    auto batch = q.pop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_GE(batch->size(), 6u);
    EXPECT_LE(batch->size(), 16u);
}

// ------------------------------------------------------------------ stats
TEST(ServerStatsTest, PercentileIsNearestRank)
{
    std::vector<double> samples;
    for (int i = 1; i <= 100; ++i)
        samples.push_back(double(i));
    EXPECT_DOUBLE_EQ(percentile(samples, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(samples, 99.0), 99.0);
    EXPECT_DOUBLE_EQ(percentile(samples, 100.0), 100.0);
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

// ----------------------------------------------------------------- routing
TEST(BackendRouterTest, DeterministicChoiceAndPositiveEstimates)
{
    GcodOptions opts;
    auto bundle = buildArtifact(ArtifactKey{"Cora", "GCN",
                                            hashGcodOptions(opts)},
                                opts, 0.25, 11);
    BackendRouter router({"GCoD", "HyGCN", "AWB-GCN"});
    RouteDecision first = router.choose(*bundle);
    for (int i = 0; i < 5; ++i) {
        RouteDecision again = router.choose(*bundle);
        EXPECT_EQ(again.backend, first.backend);
        EXPECT_EQ(again.name, first.name);
    }
    for (int i = 0; i < int(router.numBackends()); ++i)
        EXPECT_GT(router.estimateSeconds(i, *bundle), 0.0);
}

TEST(BackendRouterTest, QueueDepthPenaltyShedsLoad)
{
    GcodOptions opts;
    auto bundle = buildArtifact(ArtifactKey{"Cora", "GCN",
                                            hashGcodOptions(opts)},
                                opts, 0.25, 11);
    BackendRouter router({"GCoD", "HyGCN", "AWB-GCN"});
    int favorite = router.choose(*bundle).backend;
    // Pile enough depth onto the favorite and it must yield.
    for (int i = 0; i < 1000; ++i)
        router.beginDispatch(favorite, 0.0);
    EXPECT_NE(router.choose(*bundle).backend, favorite);
    for (int i = 0; i < 1000; ++i)
        router.endDispatch(favorite);
}

TEST(BackendRouterTest, LeastWorkRoutingSpreadsSteadyTraffic)
{
    GcodOptions opts;
    auto bundle = buildArtifact(ArtifactKey{"Cora", "GCN",
                                            hashGcodOptions(opts)},
                                opts, 0.25, 11);
    BackendRouter router({"GCoD", "HyGCN", "AWB-GCN"});
    std::set<int> used;
    for (int i = 0; i < 200; ++i) {
        RouteDecision d = router.choose(*bundle);
        router.beginDispatch(d.backend, d.estimatedSeconds);
        router.endDispatch(d.backend);
        used.insert(d.backend);
    }
    // Virtual-work accounting must saturate the fastest backend and
    // spill steady traffic onto the others.
    EXPECT_GE(used.size(), 2u);
    for (int i : used)
        EXPECT_GT(router.assignedWorkSeconds(i), 0.0);
}

TEST(ServingEngineTest, RoutingIsDeterministicUnderFixedSeed)
{
    // FixedSize batching with phase-by-phase drains pins the batch
    // sequence, so the routed backend per request must reproduce exactly.
    auto run = [] {
        ServeOptions opts;
        opts.backends = {"GCoD", "HyGCN", "AWB-GCN"};
        opts.workers = 1;
        opts.artifactScale = 0.25;
        opts.artifactSeed = 11;
        opts.batching.policy = BatchPolicy::FixedSize;
        opts.batching.maxBatch = 3;
        ServingEngine engine(opts);
        std::vector<std::string> backends;
        const char *phases[] = {"Cora", "CiteSeer", "Cora", "Cora",
                                "CiteSeer", "Cora"};
        for (const char *dataset : phases) {
            std::vector<std::future<InferenceReply>> futures;
            for (int i = 0; i < 3; ++i)
                futures.push_back(engine.submit({0, dataset, "GCN", 0}));
            engine.drain();
            for (auto &f : futures) {
                InferenceReply r = f.get();
                EXPECT_TRUE(r.ok()) << r.error;
                EXPECT_EQ(r.batchSize, 3u);
                backends.push_back(r.backend);
            }
        }
        return backends;
    };
    EXPECT_EQ(run(), run());
}

// ------------------------------------------------------------------ engine
TEST(ServingEngineTest, UnknownDatasetFailsTheRequestNotTheEngine)
{
    ServeOptions opts;
    opts.backends = {"GCoD", "HyGCN"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    opts.batching.maxDelay = std::chrono::microseconds(200);
    ServingEngine engine(opts);
    auto bad = engine.submit({0, "NoSuchDataset", "GCN", 0});
    auto good = engine.submit({0, "Cora", "GCN", 0});
    engine.drain();
    EXPECT_FALSE(bad.get().ok());
    EXPECT_TRUE(good.get().ok());
    EXPECT_EQ(engine.stats().failed(), 1u);
}

TEST(ServingEngineTest, SampledServingIsDeterministicPerSeed)
{
    ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    opts.batching.maxDelay = std::chrono::microseconds(200);
    ServingEngine engine(opts);

    auto sampled = [&](const char *model, int fanout, uint64_t seed) {
        InferenceRequest req;
        req.dataset = "Cora";
        req.model = model;
        req.node = 5;
        req.sampleFanout = fanout;
        req.sampleSeed = seed;
        auto fut = engine.submit(std::move(req));
        engine.drain();
        return fut.get();
    };

    // Same request + same seed: byte-identical reply, across repeats and
    // for both Mean-aggregation families.
    for (const char *model : {"GraphSAGE", "GCN"}) {
        InferenceReply a = sampled(model, 3, 17);
        InferenceReply b = sampled(model, 3, 17);
        ASSERT_TRUE(a.ok()) << model << ": " << a.error;
        ASSERT_TRUE(b.ok()) << model << ": " << b.error;
        EXPECT_EQ(a.prediction, b.prediction) << model;
        EXPECT_EQ(a.backend, b.backend) << model;
    }

    // A different seed is a different (still valid) sample.
    InferenceReply other = sampled("GraphSAGE", 3, 99);
    EXPECT_TRUE(other.ok()) << other.error;

    // Non-Mean families cannot serve sampled neighborhoods; the request
    // fails with an error naming the family, the engine stays up.
    InferenceReply gat = sampled("GAT", 3, 17);
    EXPECT_FALSE(gat.ok());
    EXPECT_NE(gat.error.find("GAT"), std::string::npos) << gat.error;
    EXPECT_TRUE(sampled("GraphSAGE", 3, 17).ok());
}

TEST(ServingEngineTest, SubmitAfterShutdownResolvesWithError)
{
    ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    ServingEngine engine(opts);
    engine.shutdown();
    InferenceReply r = engine.submit({0, "Cora", "GCN", 0}).get();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(engine.pending(), 0u);
}

TEST(ServingEngineTest, ShutdownUnderLoadResolvesEveryRequest)
{
    ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 2;
    opts.artifactScale = 0.25;
    // FixedSize with a large target: the backlog sits as partial groups
    // that only the shutdown-triggered drain can release.
    opts.batching.policy = BatchPolicy::FixedSize;
    opts.batching.maxBatch = 64;
    ServingEngine engine(opts);

    std::vector<std::future<InferenceReply>> futures;
    for (int i = 0; i < 20; ++i)
        futures.push_back(engine.submit({0, "Cora", "GCN", NodeId(i)}));
    engine.shutdown();

    for (auto &f : futures) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(60)),
                  std::future_status::ready)
            << "shutdown left a request unresolved";
        InferenceReply r = f.get();
        EXPECT_TRUE(r.ok()) << r.error;
    }
    EXPECT_EQ(engine.stats().completed(), 20u);
    EXPECT_EQ(engine.pending(), 0u);
}

TEST(ServingEngineTest, MultithreadedSmoke)
{
    ServeOptions opts;
    opts.backends = {"GCoD", "HyGCN", "AWB-GCN", "DGL-GPU"};
    opts.workers = 4;
    opts.cacheCapacity = 4;
    opts.artifactScale = 0.25;
    opts.batching.policy = BatchPolicy::Adaptive;
    opts.batching.maxBatch = 16;
    opts.batching.maxDelay = std::chrono::microseconds(500);
    ServingEngine engine(opts);

    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 50;
    std::vector<std::thread> submitters;
    std::mutex futuresMu;
    std::vector<std::future<InferenceReply>> futures;
    for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                InferenceRequest req;
                req.dataset = (t + i) % 3 == 0 ? "CiteSeer" : "Cora";
                req.node = NodeId(i);
                auto fut = engine.submit(std::move(req));
                std::lock_guard<std::mutex> lock(futuresMu);
                futures.push_back(std::move(fut));
            }
        });
    }
    for (auto &t : submitters)
        t.join();
    engine.drain();

    for (auto &f : futures) {
        InferenceReply r = f.get();
        EXPECT_TRUE(r.ok()) << r.error;
        EXPECT_GE(r.batchSize, 1u);
        EXPECT_GT(r.latencySeconds, 0.0);
    }
    EXPECT_EQ(engine.stats().completed(),
              uint64_t(kSubmitters * kPerThread));
    EXPECT_EQ(engine.pending(), 0u);
    // Two datasets, hundreds of requests: almost all lookups must hit.
    EXPECT_GT(engine.cache().hitRate(), 0.5);
    // Batching must actually amortize under concurrent load.
    EXPECT_LT(engine.stats().batches(),
              uint64_t(kSubmitters * kPerThread));
}
