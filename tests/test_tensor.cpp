/**
 * @file
 * Tests for the dense/sparse kernels and quantization, including numeric
 * identities between the row-wise and column-wise SpMM dataflows (the
 * paper's Fig. 5/7 product orders must compute the same result).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "graph/sparse.hpp"
#include "sim/rng.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"

using namespace gcod;

namespace {

Matrix
randomDense(int64_t r, int64_t c, Rng &rng)
{
    Matrix m(r, c);
    for (auto &v : m.data())
        v = float(rng.normal(0.0, 1.0));
    return m;
}

CsrMatrix
randomSparse(NodeId r, NodeId c, int nnz, Rng &rng)
{
    CooMatrix coo(r, c);
    for (int i = 0; i < nnz; ++i)
        coo.add(NodeId(rng.uniformInt(0, r - 1)),
                NodeId(rng.uniformInt(0, c - 1)),
                float(rng.normal(0.0, 1.0)));
    return coo.toCsr();
}

Matrix
denseOf(const CsrMatrix &m)
{
    Matrix d(m.rows(), m.cols(), 0.0f);
    m.forEach([&](NodeId r, NodeId c, float v) { d(r, c) += v; });
    return d;
}

} // namespace

// ----------------------------------------------------------------- matrix
TEST(Matrix, FillAndIndexing)
{
    Matrix m(2, 3, 1.5f);
    EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
    m(0, 0) = 7.0f;
    EXPECT_FLOAT_EQ(m(0, 0), 7.0f);
    m.fill(0.0f);
    EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
    EXPECT_EQ(m.size(), 6);
}

TEST(Matrix, ArithmeticOps)
{
    Matrix a(2, 2, 1.0f), b(2, 2, 2.0f);
    a += b;
    EXPECT_FLOAT_EQ(a(0, 0), 3.0f);
    a -= b;
    EXPECT_FLOAT_EQ(a(1, 1), 1.0f);
    a *= 4.0f;
    EXPECT_FLOAT_EQ(a(0, 1), 4.0f);
    EXPECT_THROW(a += Matrix(3, 3), std::logic_error);
}

TEST(Matrix, FrobeniusNorm)
{
    Matrix m(1, 2);
    m(0, 0) = 3.0f;
    m(0, 1) = 4.0f;
    EXPECT_NEAR(m.frobeniusNorm(), 5.0, 1e-6);
}

TEST(Matrix, GlorotInitWithinLimit)
{
    Rng rng(1);
    Matrix m(64, 32);
    m.glorotInit(rng);
    double limit = std::sqrt(6.0 / (64 + 32));
    for (float v : m.data()) {
        EXPECT_LE(std::fabs(v), limit + 1e-6);
    }
    EXPECT_GT(m.frobeniusNorm(), 0.0);
}

// ------------------------------------------------------------------- gemm
TEST(Gemm, MatchesHandComputation)
{
    Matrix a(2, 2), b(2, 2);
    a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
    b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
    Matrix c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 19);
    EXPECT_FLOAT_EQ(c(0, 1), 22);
    EXPECT_FLOAT_EQ(c(1, 0), 43);
    EXPECT_FLOAT_EQ(c(1, 1), 50);
}

TEST(Gemm, TransposedVariantsAgreeWithExplicitTranspose)
{
    Rng rng(2);
    Matrix a = randomDense(7, 5, rng);
    Matrix b = randomDense(7, 4, rng);
    // A^T B via matmulTransposedA vs building A^T.
    Matrix at(5, 7);
    for (int64_t i = 0; i < 7; ++i)
        for (int64_t j = 0; j < 5; ++j)
            at(j, i) = a(i, j);
    EXPECT_LT(Matrix::maxAbsDiff(matmulTransposedA(a, b), matmul(at, b)),
              1e-4);

    Matrix c = randomDense(6, 5, rng);
    Matrix d = randomDense(8, 5, rng);
    Matrix dt(5, 8);
    for (int64_t i = 0; i < 8; ++i)
        for (int64_t j = 0; j < 5; ++j)
            dt(j, i) = d(i, j);
    EXPECT_LT(Matrix::maxAbsDiff(matmulTransposedB(c, d), matmul(c, dt)),
              1e-4);
}

// ------------------------------------------------------------------- spmm
TEST(Spmm, RowWiseMatchesDenseReference)
{
    Rng rng(3);
    CsrMatrix a = randomSparse(12, 9, 40, rng);
    Matrix x = randomDense(9, 5, rng);
    Matrix ref = matmul(denseOf(a), x);
    EXPECT_LT(Matrix::maxAbsDiff(spmmRowWise(a, x), ref), 1e-4);
}

TEST(Spmm, ColumnWiseMatchesRowWise)
{
    // The gathered (row-wise) and distributed (column-wise) dataflows of
    // Fig. 5 must produce identical results.
    Rng rng(4);
    for (int trial = 0; trial < 5; ++trial) {
        CsrMatrix a = randomSparse(20, 15, 80, rng);
        Matrix x = randomDense(15, 6, rng);
        Matrix row = spmmRowWise(a, x);
        Matrix col = spmmColumnWise(a.toCsc(), x);
        EXPECT_LT(Matrix::maxAbsDiff(row, col), 1e-4);
    }
}

TEST(Spmm, EmptyMatrixGivesZeros)
{
    CooMatrix coo(4, 4);
    CsrMatrix a = coo.toCsr();
    Matrix x(4, 3, 1.0f);
    Matrix y = spmm(a, x);
    EXPECT_DOUBLE_EQ(y.frobeniusNorm(), 0.0);
}

// ------------------------------------------------------------ activations
TEST(Activations, ReluClampsNegatives)
{
    Matrix x(1, 4);
    x(0, 0) = -1; x(0, 1) = 0; x(0, 2) = 2; x(0, 3) = -0.5;
    Matrix y = relu(x);
    EXPECT_FLOAT_EQ(y(0, 0), 0);
    EXPECT_FLOAT_EQ(y(0, 2), 2);
}

TEST(Activations, ReluBackwardMasksByPreactivation)
{
    Matrix x(1, 3), g(1, 3, 1.0f);
    x(0, 0) = -1; x(0, 1) = 0; x(0, 2) = 3;
    Matrix gx = reluBackward(g, x);
    EXPECT_FLOAT_EQ(gx(0, 0), 0);
    EXPECT_FLOAT_EQ(gx(0, 1), 0);
    EXPECT_FLOAT_EQ(gx(0, 2), 1);
}

TEST(Activations, LeakyReluSlope)
{
    Matrix x(1, 2);
    x(0, 0) = -2.0f;
    x(0, 1) = 2.0f;
    Matrix y = leakyRelu(x, 0.1f);
    EXPECT_FLOAT_EQ(y(0, 0), -0.2f);
    EXPECT_FLOAT_EQ(y(0, 1), 2.0f);
}

TEST(Softmax, RowsSumToOneAndShiftInvariant)
{
    Rng rng(5);
    Matrix x = randomDense(6, 9, rng);
    Matrix p = softmaxRows(x);
    for (int64_t r = 0; r < p.rows(); ++r) {
        double sum = 0.0;
        for (int64_t c = 0; c < p.cols(); ++c) {
            sum += p(r, c);
            EXPECT_GE(p(r, c), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
    Matrix shifted = x;
    shifted *= 1.0f;
    for (auto &v : shifted.data())
        v += 100.0f;
    EXPECT_LT(Matrix::maxAbsDiff(softmaxRows(shifted), p), 1e-5);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss)
{
    Matrix p(2, 2, 0.0f);
    p(0, 0) = 1.0f;
    p(1, 1) = 1.0f;
    EXPECT_NEAR(crossEntropy(p, {0, 1}), 0.0, 1e-6);
}

TEST(CrossEntropy, MaskSelectsRows)
{
    Matrix p(2, 2, 0.5f);
    double all = crossEntropy(p, {0, 1});
    double one = crossEntropy(p, {0, 1}, {true, false});
    EXPECT_NEAR(all, one, 1e-6); // identical rows -> identical mean
    EXPECT_NEAR(one, -std::log(0.5), 1e-5);
}

TEST(CrossEntropy, GradientMatchesNumericalDerivative)
{
    // Check d(CE . softmax)/dlogits against finite differences.
    Rng rng(6);
    Matrix logits = randomDense(3, 4, rng);
    std::vector<int> labels = {1, 3, 0};
    Matrix grad = softmaxCrossEntropyBackward(softmaxRows(logits), labels);
    const float eps = 1e-3f;
    for (int64_t r = 0; r < 3; ++r) {
        for (int64_t c = 0; c < 4; ++c) {
            Matrix lp = logits, lm = logits;
            lp(r, c) += eps;
            lm(r, c) -= eps;
            double num = (crossEntropy(softmaxRows(lp), labels) -
                          crossEntropy(softmaxRows(lm), labels)) /
                         (2.0 * eps);
            EXPECT_NEAR(grad(r, c), num, 5e-3);
        }
    }
}

TEST(Accuracy, CountsArgmaxMatches)
{
    Matrix logits(3, 2, 0.0f);
    logits(0, 0) = 1.0f; // predicts 0
    logits(1, 1) = 1.0f; // predicts 1
    logits(2, 0) = 1.0f; // predicts 0
    EXPECT_NEAR(accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(accuracy(logits, {0, 1, 1}, {true, false, false}), 1.0,
                1e-9);
}

TEST(Concat, HconcatLaysOutSideBySide)
{
    Matrix a(2, 2, 1.0f), b(2, 3, 2.0f);
    Matrix c = hconcat(a, b);
    EXPECT_EQ(c.cols(), 5);
    EXPECT_FLOAT_EQ(c(0, 1), 1.0f);
    EXPECT_FLOAT_EQ(c(0, 2), 2.0f);
}

TEST(MeanOf, AveragesMatrices)
{
    Matrix a(1, 2, 1.0f), b(1, 2, 3.0f);
    Matrix m = meanOf({a, b});
    EXPECT_FLOAT_EQ(m(0, 0), 2.0f);
}

// ------------------------------------------------------------------ quant
TEST(Quant, RoundTripWithinHalfScale)
{
    Rng rng(7);
    Matrix x = randomDense(10, 10, rng);
    QuantParams qp = chooseQuantParams(x, 8);
    Matrix back = dequantize(quantize(x, qp), 10, 10, qp);
    EXPECT_LE(Matrix::maxAbsDiff(x, back), qp.scale * 0.5 + 1e-7);
}

TEST(Quant, SymmetricClampAtTwoBits)
{
    // Regression: quantize() used to clamp to the full two's-complement
    // range [-2^{b-1}, 2^{b-1}-1] while chooseQuantParams scales the
    // peak to 2^{b-1}-1, leaving an extra, asymmetric most-negative
    // code reachable for shared-scale callers. At bits=2 the off-by-one
    // is visible: codes must stay in [-1, 1].
    QuantParams qp;
    qp.bits = 2;
    qp.scale = 1.0f;
    Matrix x(1, 3);
    x(0, 0) = -5.0f;
    x(0, 1) = 5.0f;
    x(0, 2) = -1.0f;
    std::vector<int32_t> q = quantize(x, qp);
    EXPECT_EQ(q[0], -1); // was -2 before the fix
    EXPECT_EQ(q[1], 1);
    EXPECT_EQ(q[2], -1);
    // Saturated negative and positive peaks dequantize symmetrically.
    Matrix back = dequantize(q, 1, 3, qp);
    EXPECT_FLOAT_EQ(back(0, 0), -back(0, 1));
}

TEST(Quant, FakeQuantizeIdempotent)
{
    Rng rng(8);
    Matrix x = randomDense(6, 6, rng);
    Matrix q1 = fakeQuantize(x, 8);
    Matrix q2 = fakeQuantize(q1, 8);
    EXPECT_LT(Matrix::maxAbsDiff(q1, q2), 1e-5);
}

TEST(Quant, ZeroMatrixSurvives)
{
    Matrix x(4, 4, 0.0f);
    Matrix q = fakeQuantize(x, 8);
    EXPECT_DOUBLE_EQ(q.frobeniusNorm(), 0.0);
}

TEST(Quant, DegreeAwareProtectsHighDegreeRows)
{
    Rng rng(9);
    Matrix x = randomDense(8, 4, rng);
    std::vector<int32_t> degrees = {1, 1, 1, 1, 1, 1, 1, 100};
    Matrix q = degreeAwareFakeQuantize(x, degrees, 4, 0.2);
    // The protected row is bit-exact; at 4 bits others generally are not.
    for (int64_t c = 0; c < 4; ++c)
        EXPECT_FLOAT_EQ(q(7, c), x(7, c));
}

class QuantBits : public ::testing::TestWithParam<int>
{};

TEST_P(QuantBits, ErrorShrinksWithMoreBits)
{
    Rng rng(10);
    Matrix x = randomDense(16, 16, rng);
    int bits = GetParam();
    double err = quantizationError(x, bits);
    double err_next = quantizationError(x, bits + 2);
    EXPECT_LT(err_next, err + 1e-9);
    // Error bounded by half a quantization step.
    QuantParams qp = chooseQuantParams(x, bits);
    EXPECT_LE(err, qp.scale * 0.5 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantBits, ::testing::Values(4, 6, 8, 10));
