/**
 * @file
 * Tests for the compression baselines (RP / SGCN / QAT / Degree-Quant)
 * used in the Tab. VII comparison.
 */
#include <gtest/gtest.h>

#include "compress/compress.hpp"

using namespace gcod;

namespace {

Dataset
smallDataset(uint64_t seed = 33)
{
    Rng rng(seed);
    SyntheticGraph s = synthesize(profileByName("Cora"), 0.15, rng);
    return materialize(s, rng);
}

TrainOptions
fastTrain()
{
    TrainOptions t;
    t.epochs = 20;
    return t;
}

} // namespace

TEST(Compress, RandomPruneKeepsRequestedFraction)
{
    Dataset ds = smallDataset();
    Rng rng(1);
    CompressReport rep = randomPrune(ds, "GCN", 0.10, fastTrain(), rng);
    EXPECT_EQ(rep.method, "RP");
    EXPECT_NEAR(rep.edgeSparsity, 0.10, 1e-9);
    EXPECT_GT(rep.testAccuracy, 1.0 / double(ds.numClasses()));
}

TEST(Compress, SgcnAchievesPruneBudget)
{
    Dataset ds = smallDataset(35);
    Rng rng(2);
    CompressReport rep = sgcnSparsify(ds, "GCN", 0.10, fastTrain(), rng);
    EXPECT_EQ(rep.method, "SGCN");
    EXPECT_NEAR(rep.edgeSparsity, 0.10, 0.03);
    EXPECT_GT(rep.testAccuracy, 1.0 / double(ds.numClasses()));
}

TEST(Compress, QatTrainsToUsableAccuracy)
{
    Dataset ds = smallDataset(37);
    Rng rng(3);
    CompressReport rep = qatTrain(ds, "GCN", 8, fastTrain(), rng);
    EXPECT_EQ(rep.method, "QAT");
    EXPECT_EQ(rep.bits, 8);
    EXPECT_GT(rep.testAccuracy, 2.0 / double(ds.numClasses()));
}

TEST(Compress, DegreeQuantRunsWithProtection)
{
    Dataset ds = smallDataset(39);
    Rng rng(4);
    CompressReport rep =
        degreeQuant(ds, "GCN", 8, 0.1, fastTrain(), rng);
    EXPECT_EQ(rep.method, "Degree-Quant");
    EXPECT_GT(rep.testAccuracy, 2.0 / double(ds.numClasses()));
}

TEST(Compress, LowBitQatDegradesGracefully)
{
    Dataset ds = smallDataset(41);
    Rng rng(5);
    CompressReport q8 = qatTrain(ds, "GCN", 8, fastTrain(), rng);
    CompressReport q3 = qatTrain(ds, "GCN", 3, fastTrain(), rng);
    // 3-bit is strictly harder; it must not beat 8-bit by a wide margin.
    EXPECT_LT(q3.testAccuracy, q8.testAccuracy + 0.10);
}

class CompressModels : public ::testing::TestWithParam<const char *>
{};

TEST_P(CompressModels, BaselinesRunAcrossModelFamilies)
{
    Dataset ds = smallDataset(43);
    Rng rng(6);
    TrainOptions t;
    t.epochs = 6;
    EXPECT_GT(randomPrune(ds, GetParam(), 0.1, t, rng).testAccuracy, 0.0);
    EXPECT_GT(qatTrain(ds, GetParam(), 8, t, rng).testAccuracy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Models, CompressModels,
                         ::testing::Values("GCN", "GIN", "GraphSAGE"));
