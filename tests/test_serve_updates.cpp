/**
 * @file
 * Streamed-update serving tests: ServingEngine::applyUpdate() publishes
 * incrementally rebuilt epochs whose logits match a from-scratch forward
 * over the final graph, swaps drop zero requests under concurrent load,
 * and repeated publishes leave no retired-epoch or memo debris
 * (ArtifactCache hygiene).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "dyn/delta.hpp"
#include "dyn/dyn_state.hpp"
#include "dyn/incremental_forward.hpp"
#include "serve/engine.hpp"
#include "serve/incremental.hpp"

using namespace gcod;
using namespace gcod::serve;

namespace {

ServeOptions
engineOptions()
{
    ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 1;
    opts.artifactScale = 0.25;
    opts.batching.maxDelay = std::chrono::microseconds(200);
    return opts;
}

void
expectMatrixEq(const Matrix &a, const Matrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    EXPECT_EQ(std::memcmp(a.row(0), b.row(0),
                          size_t(a.size()) * sizeof(float)),
              0);
}

/** Edge toggles among the bundle graph's first nodes. */
dyn::GraphDelta
toggleDelta(const Graph &g, int count, uint64_t seed)
{
    Rng rng(seed);
    dyn::GraphDelta d;
    NodeId n = g.numNodes();
    for (int i = 0; i < count; ++i) {
        NodeId u = NodeId(rng.uniformInt(0, n - 1));
        NodeId v = NodeId(rng.uniformInt(0, n - 1));
        if (u == v)
            continue;
        if (g.adjacency().at(u, v) != 0.0f)
            d.removeEdge(u, v);
        else
            d.insertEdge(u, v);
    }
    return d;
}

} // namespace

TEST(ServeUpdates, ApplyUpdatePublishesAnEpochWithExactLogits)
{
    ServingEngine engine(engineOptions());
    ArtifactKey key = engine.keyFor("Cora", "GCN");

    // Prime and remember the cold epoch.
    auto before = engine.submit({0, "Cora", "GCN", 0});
    engine.drain();
    ASSERT_TRUE(before.get().ok());
    uint64_t v0 = engine.cache().residentVersion(key);
    auto bundle0 = engine.cache().peek(key);
    ASSERT_NE(bundle0, nullptr);
    EdgeOffset edges0 = bundle0->synth.graph.numEdges();

    dyn::GraphDelta d = toggleDelta(bundle0->synth.graph, 12, 5);
    ServingEngine::UpdateResult r = engine.applyUpdate(key, d);
    EXPECT_FALSE(r.noop);
    EXPECT_GT(r.version, v0);
    EXPECT_EQ(r.dynEpoch, 1u);
    EXPECT_GT(r.touched, 0u);
    EXPECT_GE(r.dirtyRows, r.touched);

    auto bundle1 = engine.cache().peek(key);
    ASSERT_NE(bundle1, nullptr);
    ASSERT_NE(bundle1.get(), bundle0.get());
    EXPECT_NE(bundle1->synth.graph.numEdges(), edges0);

    // The prefilled fp32 logits equal a from-scratch forward over the
    // final graph, bit for bit.
    ASSERT_TRUE(bundle1->hasHostExec());
    ASSERT_EQ(bundle1->storedLogits.count(32), 1u);
    expectMatrixEq(bundle1->storedLogits.at(32),
                   referenceForward(bundle1->hostRecipe,
                                    bundle1->hostFeatures));

    // Serving continues against the new epoch.
    auto after = engine.submit({0, "Cora", "GCN", 0});
    engine.drain();
    EXPECT_TRUE(after.get().ok());
    engine.shutdown();
}

TEST(ServeUpdates, SecondUpdateStacksIncrementally)
{
    ServingEngine engine(engineOptions());
    ArtifactKey key = engine.keyFor("Cora", "GCN");
    auto first = engine.applyUpdate(key, dyn::GraphDelta{});
    EXPECT_TRUE(first.noop); // empty delta builds the key but swaps nothing

    auto bundle0 = engine.cache().peek(key);
    ASSERT_NE(bundle0, nullptr);
    auto r1 =
        engine.applyUpdate(key, toggleDelta(bundle0->synth.graph, 8, 7));
    ASSERT_FALSE(r1.noop);
    auto bundle1 = engine.cache().peek(key);
    auto r2 =
        engine.applyUpdate(key, toggleDelta(bundle1->synth.graph, 8, 11));
    ASSERT_FALSE(r2.noop);
    EXPECT_EQ(r2.dynEpoch, 2u);
    EXPECT_GT(r2.version, r1.version);

    // The second update rides the incremental forward state: far fewer
    // rows recomputed than a full pass.
    auto bundle2 = engine.cache().peek(key);
    size_t fullRows = size_t(bundle2->hostFeatures.rows()) *
                      bundle2->spec.layers.size();
    EXPECT_LT(r2.recomputedRows, fullRows);
    expectMatrixEq(bundle2->storedLogits.at(32),
                   referenceForward(bundle2->hostRecipe,
                                    bundle2->hostFeatures));
    engine.shutdown();
}

TEST(ServeUpdates, ZeroDropsUnderConcurrentUpdateStream)
{
    ServeOptions opts = engineOptions();
    opts.workers = 2;
    ServingEngine engine(opts);
    ArtifactKey key = engine.keyFor("Cora", "GCN");
    // Warm the key so the writer races serving, not the initial build.
    engine.applyUpdate(key, dyn::GraphDelta{});

    std::atomic<bool> stop{false};
    std::atomic<int> swaps{0};
    std::thread writer([&] {
        uint64_t seed = 100;
        while (!stop.load()) {
            auto bundle = engine.cache().peek(key);
            if (bundle != nullptr) {
                auto r = engine.applyUpdate(
                    key, toggleDelta(bundle->synth.graph, 4, seed++));
                if (!r.noop)
                    swaps.fetch_add(1);
            }
        }
    });

    std::vector<std::future<InferenceReply>> futures;
    for (int i = 0; i < 60; ++i)
        futures.push_back(engine.submit({0, "Cora", "GCN", 0}));
    engine.drain();
    stop.store(true);
    writer.join();

    size_t ok = 0;
    for (auto &f : futures) {
        InferenceReply reply = f.get();
        EXPECT_TRUE(reply.ok()) << reply.error;
        ok += reply.ok();
    }
    EXPECT_EQ(ok, futures.size());
    EXPECT_GT(swaps.load(), 0);
    EXPECT_EQ(engine.stats().failed(), 0u);

    // Every retired epoch drains once in-flight work completes.
    engine.drain();
    engine.reclaimRetiredArtifacts();
    EXPECT_EQ(engine.cache().retiredCount(), 0u);
    engine.shutdown();
}

// ----------------------------------------------------- epoch hygiene
TEST(ServeUpdates, RapidPublishesLeaveOneLiveVersionAndNoMemoDebris)
{
    ServingEngine engine(engineOptions());
    ArtifactKey key = engine.keyFor("Cora", "GCN");

    // Populate the execution memo against the cold epoch.
    auto f = engine.submit({0, "Cora", "GCN", 0});
    engine.drain();
    ASSERT_TRUE(f.get().ok());

    for (int i = 0; i < 6; ++i) {
        auto bundle = engine.cache().peek(key);
        ASSERT_NE(bundle, nullptr);
        engine.applyUpdate(key, toggleDelta(bundle->synth.graph, 3,
                                            uint64_t(40 + i)));
    }
    engine.reclaimRetiredArtifacts();
    EXPECT_EQ(engine.cache().retiredCount(), 0u);
    EXPECT_EQ(engine.cache().size(), 1u);

    // Memoized logits may only reference the resident version; with the
    // bundle's own storedLogits prefilled, nothing stale accumulates.
    uint64_t live = engine.cache().residentVersion(key);
    EXPECT_GT(live, 0u);
    EXPECT_LE(engine.execMemoEntries(),
              engine.quantBits().size() + 1);
    engine.shutdown();
}

TEST(ServeUpdates, RepublishingTheResidentBundleRetiresNothing)
{
    ArtifactCache cache(4, [](const ArtifactKey &k) {
        auto b = std::make_shared<ArtifactBundle>();
        b->key = k;
        return b;
    });
    ArtifactKey key{"Cora", "GCN", 1};
    auto bundle = cache.get(key).bundle;
    uint64_t last = 0;
    for (int i = 0; i < 5; ++i)
        last = cache.publish(key, bundle);
    EXPECT_EQ(cache.retiredCount(), 0u);
    EXPECT_EQ(cache.reclaimRetired(), 0u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.residentVersion(key), last);

    // A genuinely new bundle still retires the old epoch exactly once.
    auto fresh = std::make_shared<ArtifactBundle>();
    fresh->key = key;
    cache.publish(key, fresh);
    EXPECT_EQ(cache.retiredCount(), 1u);
    bundle.reset();
    EXPECT_EQ(cache.reclaimRetired(), 1u);
    EXPECT_EQ(cache.retiredCount(), 0u);
}

// ------------------------------------------- serve-level dyn equivalence
TEST(ServeUpdates, IncrementalBundleMatchesDynStateOverFinalGraph)
{
    ServingEngine engine(engineOptions());
    ArtifactKey key = engine.keyFor("CiteSeer", "GCN");
    engine.applyUpdate(key, dyn::GraphDelta{}); // build
    auto bundle0 = engine.cache().peek(key);
    ASSERT_NE(bundle0, nullptr);

    for (int i = 0; i < 3; ++i) {
        auto cur = engine.cache().peek(key);
        engine.applyUpdate(key,
                           toggleDelta(cur->synth.graph, 6, uint64_t(i)));
    }
    auto updated = engine.cache().peek(key);

    // Operators of the updated bundle equal a from-scratch derivation
    // over its final graph.
    GraphContext derived(updated->synth.graph);
    const CsrMatrix &norm = updated->hostCtx->normalized();
    EXPECT_EQ(norm.indptr(), derived.normalized().indptr());
    EXPECT_EQ(norm.indices(), derived.normalized().indices());
    EXPECT_EQ(std::memcmp(norm.values().data(),
                          derived.normalized().values().data(),
                          norm.values().size() * sizeof(float)),
              0);
    expectMatrixEq(updated->storedLogits.at(32),
                   referenceForward(updated->hostRecipe,
                                    updated->hostFeatures));
    engine.shutdown();
}
