/**
 * @file
 * Hardware design-space exploration, mirroring GCoD's reconfigurability
 * story (Sec. V-B, Fig. 8): the accelerator is generated from
 * parameterizable templates — PE count, buffer sizes, off-chip bandwidth —
 * so a deployment can be re-tuned per task. This example sweeps those
 * knobs for a chosen dataset/model and prints the latency/energy/bandwidth
 * landscape plus the best configuration under a simple EDP objective.
 *
 * Usage: codesign_explorer [dataset=Pubmed] [model=GCN] [scale=...]
 */
#include <iostream>

#include "accel/gcod_accel.hpp"
#include "accel/reconfig.hpp"
#include "gcod/pipeline.hpp"
#include "sim/config.hpp"
#include "sim/table.hpp"

using namespace gcod;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    std::string dataset = cfg.getString("dataset", "Pubmed");
    std::string model = cfg.getString("model", "GCN");

    Rng rng(7);
    const DatasetProfile &profile = profileByName(dataset);
    double scale = cfg.getDouble("scale", profile.nodes > 30000 ? 0.1 : 1.0);
    SyntheticGraph synth = synthesize(profile, scale, rng);
    GcodOutcome outcome = runGcodStructureOnly(synth, {});

    ModelSpec spec = makeModelSpec(model, profile.features, profile.classes,
                                   profile.nodes > 20000);
    GraphInput input =
        makeGraphInput(outcome.finalGraph.adjacency(), outcome.workload);
    input.publishedNodes = profile.nodes;
    input.featureDensity = profile.featureDensity;

    Table t("GCoD design space | " + model + " on " + dataset);
    t.header({"PEs", "On-chip (MB)", "HBM (GB/s)", "Latency (us)",
              "Energy (uJ)", "Req. BW (GB/s)", "EDP (pJ*s)"});

    struct Point
    {
        double pes, sram, bw, edp;
    };
    Point best{0, 0, 0, 1e300};

    for (double pes : {1024.0, 2048.0, 4096.0, 8192.0}) {
        for (double sram_mb : {8.0, 16.0, 42.0}) {
            for (double bw : {128.0, 256.0, 460.0}) {
                PlatformConfig hw = makeGcodConfig(32);
                hw.numPEs = pes;
                hw.onChipBytes = sram_mb * 1e6;
                hw.offChipGBs = bw;
                GcodAccelModel accel(hw);
                DetailedResult r = accel.simulate(spec, input);
                double edp = r.totalEnergyJ() * r.latencySeconds * 1e12;
                if (edp < best.edp)
                    best = {pes, sram_mb, bw, edp};
                t.row({formatNumber(pes), formatNumber(sram_mb),
                       formatNumber(bw),
                       formatNumber(r.latencySeconds * 1e6),
                       formatNumber(r.totalEnergyJ() * 1e6),
                       formatNumber(r.requiredBandwidthGBs),
                       formatNumber(edp)});
            }
        }
    }
    t.print(std::cout);
    std::cout << "best EDP config: " << best.pes << " PEs, " << best.sram
              << " MB SRAM, " << best.bw << " GB/s HBM (EDP "
              << formatNumber(best.edp) << " pJ*s)\n"
              << "Like the paper's template-based compilation flow, each "
                 "row is one generated hardware instance.\n\n";

    // Fig. 8 flow: parse the network, compile the winning template.
    ParsedNetwork net = parseNetwork(spec, synth.graph.numNodes(),
                                     synth.graph.numEdges());
    PlatformConfig hw = makeGcodConfig(32);
    hw.numPEs = best.pes;
    hw.onChipBytes = best.sram * 1e6;
    hw.offChipGBs = best.bw;
    HardwarePlan plan = compileHardware(hw, net, outcome.workload);
    std::cout << describePlan(plan);
    return 0;
}
