/**
 * @file
 * Algorithm-side walkthrough: train a GCN with the full GCoD pipeline on
 * a CiteSeer-profile graph and compare its accuracy against the vanilla
 * model and the compression baselines (RP / SGCN / QAT / Degree-Quant) —
 * a single-dataset slice of the paper's Tab. VII, plus the training-cost
 * accounting of Sec. IV-B2.
 *
 * Usage: accuracy_study [dataset=CiteSeer] [model=GCN] [epochs=80]
 */
#include <iostream>

#include "compress/compress.hpp"
#include "gcod/pipeline.hpp"
#include "sim/config.hpp"
#include "sim/table.hpp"

using namespace gcod;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    std::string dataset = cfg.getString("dataset", "CiteSeer");
    std::string model = cfg.getString("model", "GCN");
    int epochs = int(cfg.getInt("epochs", 80));

    Rng rng(3);
    const DatasetProfile &profile = profileByName(dataset);
    double scale = cfg.getDouble("scale", profile.nodes > 10000 ? 0.1 : 1.0);
    SyntheticGraph synth = synthesize(profile, scale, rng);
    Dataset ds = materialize(synth, rng);
    inform("dataset ", dataset, " at scale ", scale, ": ",
           ds.synth.graph.numNodes(), " nodes, ", ds.featureDim(),
           " features, ", ds.numClasses(), " classes");

    TrainOptions topts;
    topts.epochs = epochs;

    Table t("Accuracy comparison | " + model + " on " + dataset);
    t.header({"Method", "Test accuracy", "Edges pruned", "Bits"});

    {
        GraphContext ctx(ds.synth.graph);
        Rng mr(5);
        auto m = makeModel(model, ds.featureDim(), ds.numClasses(),
                           profile.nodes > 20000, mr);
        TrainReport rep = train(*m, ctx, ds, topts);
        t.row({"Vanilla", formatPercent(rep.testAccuracy), "0%", "32"});
    }
    Rng cr(7);
    auto rp = randomPrune(ds, model, 0.10, topts, cr);
    t.row({"RP", formatPercent(rp.testAccuracy),
           formatPercent(rp.edgeSparsity), "32"});
    auto sg = sgcnSparsify(ds, model, 0.10, topts, cr);
    t.row({"SGCN", formatPercent(sg.testAccuracy),
           formatPercent(sg.edgeSparsity), "32"});
    auto qa = qatTrain(ds, model, 8, topts, cr);
    t.row({"QAT", formatPercent(qa.testAccuracy), "0%", "8"});
    auto dq = degreeQuant(ds, model, 8, 0.1, topts, cr);
    t.row({"Degree-Quant", formatPercent(dq.testAccuracy), "0%", "8"});

    GcodOptions gopts;
    gopts.model = model;
    gopts.pretrain.epochs = epochs;
    gopts.retrain.epochs = epochs;
    GcodOutcome out = runGcodPipeline(ds, gopts);
    double pruned = 1.0 - (1.0 - out.step2PruneRatio) *
                              (1.0 - out.step3PruneRatio);
    t.row({"GCoD", formatPercent(out.finalAccuracy), formatPercent(pruned),
           "32"});
    t.row({"GCoD (8-bit)", formatPercent(out.finalAccuracyInt8),
           formatPercent(pruned), "8"});
    t.print(std::cout);

    std::cout << "training cost: pretrain "
              << formatPercent(out.pretrainCost /
                               (out.pretrainCost + out.tuneCost +
                                out.retrainCost))
              << ", tune "
              << formatPercent(out.tuneCost /
                               (out.pretrainCost + out.tuneCost +
                                out.retrainCost))
              << ", retrain "
              << formatPercent(out.retrainCost /
                               (out.pretrainCost + out.tuneCost +
                                out.retrainCost))
              << "; overall "
              << formatNumber(out.trainingOverheadRatio())
              << "x of standard training (paper: 0.7x-1.1x)\n"
              << "(synthetic planted-partition data: compare method "
                 "orderings, not absolute levels)\n";
    return 0;
}
