/**
 * @file
 * Quickstart: the whole GCoD flow on a Cora-sized synthetic graph in under
 * a minute.
 *
 *  1. Synthesize a Cora-profile graph (power-law degrees + communities).
 *  2. Run the GCoD split-and-conquer algorithm (partition, sparsify +
 *     polarize, structural patches) with short training budgets.
 *  3. Simulate GCN inference on every platform and print the speedup
 *     table normalized to PyG-CPU, paper Fig. 9 style.
 *
 * Usage: quickstart [dataset=Cora] [epochs=60] [classes=2] [subgraphs=8]
 */
#include <iostream>

#include "accel/accelerator.hpp"
#include "accel/registry.hpp"
#include "gcod/pipeline.hpp"
#include "sim/config.hpp"
#include "sim/table.hpp"

using namespace gcod;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    std::string dataset = cfg.getString("dataset", "Cora");
    int epochs = int(cfg.getInt("epochs", 60));

    Rng rng(42);
    const DatasetProfile &profile = profileByName(dataset);
    SyntheticGraph synth = synthesize(profile, 1.0, rng);
    inform("synthesized ", dataset, ": ", synth.graph.numNodes(), " nodes, ",
           synth.graph.numEdges(), " edges, max degree ",
           synth.graph.maxDegree());

    Dataset ds = materialize(synth, rng);

    GcodOptions opts;
    opts.reorder.numClasses = int(cfg.getInt("classes", 2));
    opts.reorder.numSubgraphs = int(cfg.getInt("subgraphs", 8));
    opts.pretrain.epochs = epochs;
    opts.retrain.epochs = epochs;

    GcodOutcome outcome = runGcodPipeline(ds, opts);
    inform("baseline accuracy  ", formatPercent(outcome.baselineAccuracy));
    inform("GCoD accuracy      ", formatPercent(outcome.finalAccuracy));
    inform("GCoD 8-bit accuracy", formatPercent(outcome.finalAccuracyInt8));
    inform("edges pruned: step2 ", formatPercent(outcome.step2PruneRatio),
           ", step3 ", formatPercent(outcome.step3PruneRatio));
    inform("sparser-branch share of nonzeros ",
           formatPercent(outcome.workload.offDiagFraction()));
    inform("training overhead vs standard ",
           formatNumber(outcome.trainingOverheadRatio()), "x");

    // --- platform comparison -------------------------------------------
    ModelSpec spec = makeModelSpec("GCN", profile.features, profile.classes,
                                   false);
    GraphInput raw = makeGraphInput(ds.synth.graph.adjacency());
    raw.featureDensity = profile.featureDensity;
    GraphInput processed = makeGraphInput(
        outcome.finalGraph.adjacency(), outcome.workload);
    processed.featureDensity = profile.featureDensity;

    Table table("Inference speedups over PyG-CPU (GCN on " + dataset + ")");
    table.header({"Platform", "Latency (ms)", "Speedup", "Off-chip (MiB)"});
    double cpu_latency = 0.0;
    for (const auto &name : allPlatformNames()) {
        auto accel = makeAccelerator(name);
        bool wants_workload = platformConsumesWorkload(name);
        DetailedResult res =
            accel->simulate(spec, wants_workload ? processed : raw);
        if (name == "PyG-CPU")
            cpu_latency = res.latencySeconds;
        table.row({name, formatNumber(res.latencySeconds * 1e3),
                   formatSpeedup(cpu_latency / res.latencySeconds),
                   formatNumber(res.offChipBytes() / (1024.0 * 1024.0))});
    }
    table.print(std::cout);
    return 0;
}
