/**
 * @file
 * The paper's motivating workload: Reddit-scale GCN inference (2-layer
 * GCN over 233k nodes / 114.6M edges takes 2.94e5 ms on a Xeon CPU —
 * Sec. I). This example walks the whole GCoD story on a Reddit-profile
 * synthetic graph: structural processing, the two-level workload split,
 * the efficiency-/resource-aware pipeline decision (Reddit's 36 MB of
 * aggregation outputs overflow the 42 MB on-chip budget), and the final
 * latency/energy/traffic comparison against the baselines.
 *
 * Usage: reddit_pipeline [scale=0.02] [model=GCN]
 */
#include <iostream>

#include "accel/accelerator.hpp"
#include "accel/gcod_accel.hpp"
#include "accel/registry.hpp"
#include "gcod/pipeline.hpp"
#include "sim/config.hpp"
#include "sim/table.hpp"

using namespace gcod;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    double scale = cfg.getDouble("scale", 0.02);
    std::string model = cfg.getString("model", "GCN");

    Rng rng(1);
    const DatasetProfile &profile = profileByName("Reddit");
    inform("synthesizing a Reddit-profile graph at scale ", scale, " (",
           int64_t(profile.nodes * scale), " nodes)...");
    SyntheticGraph synth = synthesize(profile, scale, rng);
    inform("generated ", synth.graph.numNodes(), " nodes / ",
           synth.graph.numEdges(), " edges, max degree ",
           synth.graph.maxDegree());

    GcodOptions opts;
    opts.reorder.numClasses = 4;
    opts.reorder.numSubgraphs = 16;
    GcodOutcome out = runGcodStructureOnly(synth, opts);
    inform("GCoD split-and-conquer: ",
           formatPercent(1.0 - out.workload.offDiagFraction()),
           " of nonzeros in the denser branch, ",
           formatPercent(out.workload.offDiagFraction()),
           " left for the sparser branch");

    ModelSpec spec =
        makeModelSpec(model, profile.features, profile.classes, true);
    GraphInput raw = makeGraphInput(synth.graph.adjacency());
    raw.publishedNodes = profile.nodes;
    raw.featureDensity = profile.featureDensity;
    GraphInput proc =
        makeGraphInput(out.finalGraph.adjacency(), out.workload);
    proc.publishedNodes = profile.nodes;
    proc.featureDensity = profile.featureDensity;

    // Pipeline decision: Reddit's aggregation outputs exceed on-chip.
    double out_mb = double(profile.nodes) * 64.0 * 4.0 / 1e6;
    inform("aggregation output footprint ", formatNumber(out_mb),
           " MB vs 42 MB on-chip -> the accelerator picks the "
           "resource-aware pipeline");
    auto auto_accel = makeGcodAccelerator(32, PipelineForce::Auto);
    DetailedResult auto_r = auto_accel->simulate(spec, proc);
    inform("resource-aware layers used: ",
           int(auto_r.details.at("resource_aware_layers")));

    Table t("Reddit (" + model + ", extrapolated to published size)");
    t.header({"Platform", "Latency", "Speedup vs CPU", "Off-chip",
              "Energy (mJ)"});
    double cpu = 0.0;
    for (const auto &name : {"PyG-CPU", "DGL-GPU", "HyGCN", "AWB-GCN",
                             "GCoD", "GCoD(8-bit)"}) {
        auto accel = makeAccelerator(name);
        bool wants_workload = platformConsumesWorkload(name);
        DetailedResult r = accel->simulate(spec, wants_workload ? proc : raw);
        if (std::string(name) == "PyG-CPU")
            cpu = r.latencySeconds;
        t.row({name,
               r.latencySeconds > 0.1
                   ? formatNumber(r.latencySeconds) + " s"
                   : formatNumber(r.latencySeconds * 1e3) + " ms",
               formatSpeedup(cpu / r.latencySeconds),
               formatBytes(r.offChipBytes()),
               formatNumber(r.totalEnergyJ() * 1e3)});
    }
    t.print(std::cout);
    std::cout << "paper anchor: PyG-CPU takes 2.94e5 ms on Reddit; GCoD "
                 "reaches ~4.5e4x over CPU with quantization (Tab. VI).\n";
    return 0;
}
