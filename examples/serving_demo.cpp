/**
 * @file
 * Minimal tour of the serving engine: build one engine over four
 * backends, send a burst of mixed-dataset requests, and show what the
 * serving layer did — how requests were batched, which backend each
 * batch was routed to, what the co-design artifact cost to build, and
 * how the cache amortized it.
 *
 * Usage: example_serving_demo [requests=64] [workers=2]
 *        [--trace out.json | trace=out.json]
 *
 * With a trace path, the run records request-level spans and writes a
 * Chrome trace_event file loadable in chrome://tracing or
 * https://ui.perfetto.dev (see docs/observability.md).
 */
#include <iostream>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "sim/config.hpp"
#include "sim/table.hpp"

using namespace gcod;
using namespace gcod::serve;

namespace {

/**
 * Pull "--trace <path>" out of argv (Config only speaks key=value);
 * "trace=<path>" also works and wins when both are given.
 */
std::string
extractTracePath(int &argc, char **argv, Config &cfg)
{
    std::vector<char *> rest;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--trace" && i + 1 < argc)
            path = argv[++i];
        else
            rest.push_back(argv[i]);
    }
    for (size_t i = 0; i < rest.size(); ++i)
        argv[int(i) + 1] = rest[i];
    argc = int(rest.size()) + 1;
    cfg.parseArgs(argc, argv);
    return cfg.getString("trace", path);
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    std::string tracePath = extractTracePath(argc, argv, cfg);
    int64_t requests = cfg.getInt("requests", 64);

    ServeOptions opts;
    opts.backends = {"GCoD", "HyGCN", "AWB-GCN", "DGL-GPU"};
    opts.workers = size_t(cfg.getInt("workers", 2));
    opts.batching.policy = BatchPolicy::Timeout;
    opts.batching.maxBatch = 16;
    opts.batching.maxDelay = std::chrono::microseconds(1000);
    if (!tracePath.empty())
        opts.traceLevel = obs::kTraceKernels;
    ServingEngine engine(opts);

    std::cout << "Submitting " << requests
              << " requests over {Cora, CiteSeer} + one GAT model...\n\n";

    std::vector<std::future<InferenceReply>> futures;
    for (int64_t i = 0; i < requests; ++i) {
        InferenceRequest req;
        req.dataset = i % 3 == 0 ? "CiteSeer" : "Cora";
        req.model = i % 7 == 0 ? "GAT" : "GCN";
        req.node = NodeId(i);
        futures.push_back(engine.submit(std::move(req)));
    }
    engine.drain();

    Table t("First 8 replies");
    t.header({"Req", "Dataset/model", "Backend", "Batch", "Cache",
              "Latency (ms)"});
    for (size_t i = 0; i < futures.size(); ++i) {
        InferenceReply r = futures[i].get();
        if (i >= 8)
            continue;
        t.row({std::to_string(r.id),
               (i % 3 == 0 ? "CiteSeer/" : "Cora/") +
                   std::string(i % 7 == 0 ? "GAT" : "GCN"),
               r.backend, std::to_string(r.batchSize),
               r.cacheHit ? "hit" : "miss",
               formatNumber(r.latencySeconds * 1e3)});
    }
    t.print(std::cout);

    std::cout << "\nArtifact cache: " << engine.cache().size()
              << " resident bundles, hit rate "
              << formatNumber(engine.cache().hitRate()) << ", "
              << formatNumber(engine.cache().totalBuildSeconds())
              << " s total build time amortized over " << requests
              << " requests\n\n";

    engine.stats().print(std::cout, engine.cache().hitRate());

    if (!tracePath.empty() &&
        engine.trace().writeChromeTraceFile(tracePath))
        std::cout << "\nWrote " << engine.trace().size()
                  << " trace spans to " << tracePath
                  << " (load in chrome://tracing or ui.perfetto.dev)\n";
    return 0;
}
