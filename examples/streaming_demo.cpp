/**
 * @file
 * Streaming-update walkthrough: a writer thread streams edge batches
 * into a live serving engine via applyUpdate() while readers keep
 * submitting inference requests. Every update incrementally rebuilds
 * only the delta-dirtied artifact components and hot-swaps the new
 * epoch in — in-flight requests finish on the epoch they hold, nothing
 * drops, and retired epochs reclaim once their readers drain.
 *
 * Prints, per update batch: what the delta touched, how much of the
 * graph went dirty (staleness), how many rows the incremental forward
 * actually recomputed, and the publish latency. Ends with the swap /
 * drop / reclaim tally.
 *
 * Usage: example_streaming_demo [dataset=Cora] [batches=8]
 *        [batch_edges=6] [requests=96]
 *        [--trace out.json | trace=out.json]
 *
 * With a trace path, the run records request- and update-level spans
 * and writes a Chrome trace_event file loadable in chrome://tracing or
 * https://ui.perfetto.dev (see docs/observability.md).
 */
#include <atomic>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "dyn/delta.hpp"
#include "serve/engine.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

using namespace gcod;
using namespace gcod::serve;

namespace {

/** Random edge toggles among the resident graph's nodes. */
dyn::GraphDelta
toggleDelta(const Graph &g, int count, uint64_t seed)
{
    Rng rng(seed);
    dyn::GraphDelta d;
    NodeId n = g.numNodes();
    for (int i = 0; i < count; ++i) {
        NodeId u = NodeId(rng.uniformInt(0, n - 1));
        NodeId v = NodeId(rng.uniformInt(0, n - 1));
        if (u == v)
            continue;
        if (g.adjacency().at(u, v) != 0.0f)
            d.removeEdge(u, v);
        else
            d.insertEdge(u, v);
    }
    return d;
}

/**
 * Pull "--trace <path>" out of argv (Config only speaks key=value);
 * "trace=<path>" also works and wins when both are given.
 */
std::string
extractTracePath(int &argc, char **argv, Config &cfg)
{
    std::vector<char *> rest;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--trace" && i + 1 < argc)
            path = argv[++i];
        else
            rest.push_back(argv[i]);
    }
    for (size_t i = 0; i < rest.size(); ++i)
        argv[int(i) + 1] = rest[i];
    argc = int(rest.size()) + 1;
    cfg.parseArgs(argc, argv);
    return cfg.getString("trace", path);
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    std::string tracePath = extractTracePath(argc, argv, cfg);
    std::string dataset = cfg.getString("dataset", "Cora");
    int batches = int(cfg.getInt("batches", 8));
    int batchEdges = int(cfg.getInt("batch_edges", 6));
    int requests = int(cfg.getInt("requests", 96));

    ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 2;
    if (!tracePath.empty())
        opts.traceLevel = obs::kTraceKernels;
    ServingEngine engine(opts);
    ArtifactKey key = engine.keyFor(dataset, "GCN");

    engine.applyUpdate(key, dyn::GraphDelta{}); // cold build, no swap
    NodeId nodes = engine.cache().peek(key)->synth.graph.numNodes();
    std::cout << "Serving " << dataset << " (" << nodes
              << " nodes) while a writer streams " << batches
              << " batches of " << batchEdges << " edge toggles...\n\n";

    // Writer: stream the update batches, recording what each one did.
    Table t("Streamed update batches");
    t.header({"Batch", "Epoch", "Touched", "Dirty rows", "Recomputed",
              "Staleness", "Publish (ms)"});
    std::atomic<int> swaps{0};
    std::thread writer([&] {
        for (int i = 0; i < batches; ++i) {
            auto bundle = engine.cache().peek(key);
            auto r = engine.applyUpdate(
                key, toggleDelta(bundle->synth.graph, batchEdges,
                                 uint64_t(100 + i)));
            if (r.noop)
                continue;
            swaps.fetch_add(1);
            t.row({std::to_string(i), std::to_string(r.dynEpoch),
                   std::to_string(r.touched), std::to_string(r.dirtyRows),
                   std::to_string(r.recomputedRows),
                   formatPercent(double(r.dirtyRows) / double(nodes)),
                   formatNumber(r.seconds * 1e3)});
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    });

    // Readers: keep traffic flowing through every swap.
    std::vector<std::future<InferenceReply>> futures;
    for (int i = 0; i < requests; ++i) {
        futures.push_back(engine.submit({0, dataset, "GCN", 0}));
        if (i % 8 == 7)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    writer.join();
    engine.drain();

    size_t ok = 0;
    for (auto &f : futures)
        ok += f.get().ok();
    size_t reclaimed = engine.reclaimRetiredArtifacts();

    t.print(std::cout);
    std::cout << "\nepoch swaps:        " << swaps.load()
              << "\nrequests completed: " << ok << "/" << requests
              << "\nrequests dropped:   "
              << (engine.stats().failed() + engine.stats().shed())
              << "\nretired reclaimed:  " << reclaimed
              << "  (still retired: " << engine.cache().retiredCount()
              << ")\n";

    if (!tracePath.empty() &&
        engine.trace().writeChromeTraceFile(tracePath))
        std::cout << "\nWrote " << engine.trace().size()
                  << " trace spans to " << tracePath
                  << " (load in chrome://tracing or ui.perfetto.dev)\n";
    engine.shutdown();
    return 0;
}
