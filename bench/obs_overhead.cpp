/**
 * @file
 * Observability-overhead bench: the hard gate behind the tracing
 * subsystem's core invariant — enabling observability changes ZERO
 * serving bytes and costs at most 3% throughput.
 *
 * Two phases, both recorded in BENCH_obs.json and gated under check=1:
 *
 *   1. overhead: one warm engine serves the same deterministic request
 *      script repeatedly with tracing off (level 0) and fully on
 *      (level 2, kernel spans included). The 3% gate is composed from
 *      two high-SNR measurements — the per-span recording cost from a
 *      tight calibration loop, times the spans a traced round actually
 *      records, over the round's untraced process-CPU — because the
 *      direct A/B delta of a ~1% effect cannot be measured reliably on
 *      a shared runner (identical work drifts ~±5% in measured CPU).
 *      The direct A/B median (paired, order-alternating, process-CPU)
 *      is still measured and held to a loose sanity bound so a cost
 *      the composed gate cannot see — pool-hook drag, allocator churn,
 *      cache pollution — still fails the bench.
 *   2. identity: a traced and an untraced engine each build the sharded
 *      quantized Reddit artifact and execute the int8 fleet pass; the
 *      logits must be memcmp-identical byte for byte. The traced
 *      engine's spans are written as a Chrome trace_event sample
 *      (trace_out=...) that CI uploads, so every release has a loadable
 *      end-to-end trace artifact.
 *
 * Config overrides (key=value):
 *   requests=960 reps=7 inner=4 workers=2 maxbatch=16 scale=0.002
 *   out=BENCH_obs.json trace_out=BENCH_obs_trace.json check=0
 */
#include "bench_common.hpp"

#include <algorithm>
#include <cstring>
#include <ctime>

#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "sim/rng.hpp"

using namespace gcod;
using namespace gcod::bench;
using namespace gcod::serve;

namespace {

const std::vector<std::string> kDatasets = {"Cora", "CiteSeer", "Pubmed"};

/** Loose sanity bound on the direct traced/untraced A/B CPU ratio:
 *  wide enough to absorb shared-runner measurement noise (~±5% on the
 *  median even with pairing), tight enough to catch tracing growing a
 *  cost the composed span-share gate cannot see. */
constexpr double kDirectBound = 0.15;

/** Deterministic mixed-dataset script, replayed verbatim per round. */
std::vector<InferenceRequest>
makeScript(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<InferenceRequest> script;
    script.reserve(size_t(n));
    for (int64_t i = 0; i < n; ++i) {
        InferenceRequest req;
        req.dataset = kDatasets[size_t(
            rng.uniformInt(0, int64_t(kDatasets.size()) - 1))];
        req.node = NodeId(rng.uniformInt(0, 999));
        script.push_back(std::move(req));
    }
    return script;
}

/** Process CPU seconds, summed across every thread. Span recording
 *  adds CPU work; it cannot add the scheduler gaps and CPU-steal that
 *  dominate wall-time jitter on shared runners, so the overhead gate
 *  compares CPU time and only reports wall throughput for context. */
double
processCpuSeconds()
{
    return double(std::clock()) / CLOCKS_PER_SEC;
}

struct RoundCost {
    double wall = 0.0;
    double cpu = 0.0;
};

/** CPU seconds to record one representative span (three attrs, RAII
 *  finish), calibrated by a tight loop: ~40ms of pure CPU work per
 *  pass, best of three, so the estimate is good to a few percent even
 *  on a noisy shared runner. */
double
measureSpanCostCpu()
{
    obs::TraceRecorder rec(obs::kTraceKernels, 1 << 20);
    const int kIters = 100000;
    double best = 0.0;
    for (int pass = 0; pass < 3; ++pass) {
        double c0 = processCpuSeconds();
        for (int i = 0; i < kIters; ++i) {
            obs::ScopedSpan s(&rec, obs::kTraceKernels, "span.cost",
                              "serve");
            s.attr("backend", "GCoD")
                .attr("attempt", int64_t(1))
                .attr("outcome", "ok");
        }
        double c = processCpuSeconds() - c0;
        if (best == 0.0 || c < best)
            best = c;
        rec.clear();
    }
    return best / kIters;
}

/**
 * Serve the script once; wall + CPU seconds for the whole burst. Before
 * submitting, every dataset's artifact is re-published at a new epoch
 * (same bundle — a version bump, the hot-swap fast path), so each round
 * re-runs one real host-execution pass per dataset instead of serving
 * pure memo hits: the measured throughput includes the numeric work a
 * production mix of warm cache + periodic epoch updates actually pays,
 * which is the workload the 3% overhead budget is defined against.
 */
RoundCost
serveRound(ServingEngine &engine, const std::vector<InferenceRequest> &script)
{
    auto t0 = Clock::now();
    double c0 = processCpuSeconds();
    for (const std::string &dataset : kDatasets) {
        ArtifactKey key = engine.keyFor(dataset, "GCN");
        engine.publishArtifact(key, engine.cache().get(key).bundle);
    }
    std::vector<std::future<InferenceReply>> futures;
    futures.reserve(script.size());
    for (const InferenceRequest &req : script)
        futures.push_back(engine.submit(InferenceRequest(req)));
    engine.drain();
    for (auto &f : futures)
        f.get();
    engine.reclaimRetiredArtifacts();
    RoundCost cost;
    cost.wall = std::chrono::duration<double>(Clock::now() - t0).count();
    cost.cpu = processCpuSeconds() - c0;
    return cost;
}

ServeOptions
shardedQuantizedOptions(double scale)
{
    ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.shards = 2;
    opts.shardBackends = {"GCoD@bits=8", "GCoD@bits=8"};
    opts.workers = 1;
    opts.artifactScale = scale;
    return opts;
}

void
obsOverheadBench(Config &cfg)
{
    int64_t requests = cfg.getInt("requests", 960);
    int reps = int(cfg.getInt("reps", 7));
    double scale = cfg.getDouble("scale", 0.002);
    JsonEmitter json;
    json.meta()
        .set("bench", "obs_overhead")
        .set("requests", requests)
        .set("reps", reps)
        .set("threads", int64_t(currentThreads()));

    // ------------------------------------------------- phase 1: overhead
    // One engine, warm artifacts, runtime level toggling: both modes see
    // identical cache/memo state, so the diff isolates the span cost.
    ServeOptions opts;
    opts.backends = {"GCoD", "HyGCN"};
    opts.workers = size_t(cfg.getInt("workers", 2));
    opts.batching.policy = BatchPolicy::FixedSize;
    opts.batching.maxBatch = size_t(cfg.getInt("maxbatch", 16));
    ServingEngine engine(opts);
    std::vector<InferenceRequest> script = makeScript(requests, 42);
    serveRound(engine, script); // warm artifacts + logit memo

    // The direct A/B comparison is measured with every statistical
    // defense available — process CPU time instead of wall (blind to
    // CPU steal and scheduler gaps), `inner` rounds aggregated per
    // measurement, both modes back to back per rep with the order
    // alternating, median of the paired ratios — and is still only
    // good to ~±5% on a shared runner: identical work drifts that much
    // in measured CPU when neighbors churn the cache. A ~1% signal
    // cannot carry a 3% hard gate through that, so the A/B median gets
    // a loose sanity bound (kDirectBound) and the tight 3% gate is
    // composed from two high-SNR measurements instead: the per-span
    // recording cost from a tight calibration loop, times the spans a
    // round actually records, over the round's untraced CPU.
    int inner = int(cfg.getInt("inner", 4));
    uint64_t tracedSpans = 0, tracedDropped = 0;
    auto measure = [&](obs::TraceLevel level) {
        engine.trace().setLevel(level);
        if (level != obs::kTraceOff)
            engine.trace().clear();
        RoundCost sum;
        for (int i = 0; i < inner; ++i) {
            RoundCost c = serveRound(engine, script);
            sum.wall += c.wall;
            sum.cpu += c.cpu;
        }
        if (level != obs::kTraceOff) {
            tracedSpans = engine.trace().size();
            tracedDropped = engine.trace().dropped();
            engine.trace().setLevel(obs::kTraceOff);
        }
        return sum;
    };
    std::vector<double> offWall, onWall, offCpu, cpuRatios;
    for (int rep = 0; rep < reps; ++rep) {
        RoundCost off, on;
        if (rep % 2 == 0) {
            off = measure(obs::kTraceOff);
            on = measure(obs::kTraceKernels);
        } else {
            on = measure(obs::kTraceKernels);
            off = measure(obs::kTraceOff);
        }
        offWall.push_back(off.wall);
        onWall.push_back(on.wall);
        offCpu.push_back(off.cpu);
        cpuRatios.push_back(on.cpu / off.cpu);
    }
    std::sort(cpuRatios.begin(), cpuRatios.end());
    double medianRatio = cpuRatios[cpuRatios.size() / 2];
    double untracedBest = *std::min_element(offWall.begin(),
                                            offWall.end());
    double tracedBest = *std::min_element(onWall.begin(), onWall.end());
    double thrOff = double(requests) * inner / untracedBest;
    double thrOn = double(requests) * inner / tracedBest;
    double overhead = medianRatio - 1.0;

    // The tight gate: (spans a traced round records) x (CPU cost to
    // record one span) as a share of the round's untraced CPU. Both
    // factors are high-SNR — the calibration loop is pure CPU and the
    // round CPU only enters as a denominator with ~20x headroom — so
    // the gate holds through runner noise that swamps the direct A/B.
    std::sort(offCpu.begin(), offCpu.end());
    double roundCpu = offCpu[offCpu.size() / 2] / inner;
    double spanCost = measureSpanCostCpu();
    double spansPerRound = double(tracedSpans) / inner;
    double spanShare = spansPerRound * spanCost / roundCpu;

    json.add("overhead")
        .set("untraced_best_wall_s", untracedBest)
        .set("traced_best_wall_s", tracedBest)
        .set("untraced_rps", thrOff)
        .set("traced_rps", thrOn)
        .set("span_cost_us", spanCost * 1e6)
        .set("round_cpu_s", roundCpu)
        .set("span_share_frac", spanShare)
        .set("direct_ab_frac", overhead)
        .set("paired_reps", int64_t(reps))
        .set("rounds_per_measure", int64_t(inner))
        .set("spans_per_round", int64_t(spansPerRound))
        .set("spans_dropped", int64_t(tracedDropped));

    Table t("Tracing overhead (" + std::to_string(reps) + " paired x" +
            std::to_string(inner) + "-round measures, " +
            std::to_string(requests) + " requests/round)");
    t.header({"Mode", "Best wall (s)", "Requests/s", "Spans"});
    t.row({"untraced", formatNumber(untracedBest), formatNumber(thrOff),
           "0"});
    t.row({"traced (level 2)", formatNumber(tracedBest),
           formatNumber(thrOn), std::to_string(tracedSpans)});
    t.print(std::cout);
    std::cout << "span cost: " << formatNumber(spanCost * 1e6)
              << " us x " << int64_t(spansPerRound)
              << " spans/round = " << formatPercent(spanShare)
              << " of round CPU (gate: <= 3%)\n"
              << "direct traced/untraced CPU delta (median paired): "
              << formatPercent(overhead) << " (sanity bound: <= "
              << formatPercent(kDirectBound) << ")\n\n";

    // ------------------------------------------------- phase 2: identity
    // Separate traced/untraced engines so each computes its sharded
    // quantized fleet pass from scratch — the memcmp compares two real
    // executions, not a memo hit.
    ServeOptions topts = shardedQuantizedOptions(scale);
    topts.traceLevel = obs::kTraceKernels;
    ServingEngine traced(topts);
    ServingEngine untraced(shardedQuantizedOptions(scale));

    auto fut = traced.submit({0, "Reddit", "GCN", 5});
    traced.drain();
    bool servedOk = fut.get().ok();

    ArtifactKey key = traced.keyFor("Reddit", "GCN");
    auto a = traced.peekLogits(key, 8);
    auto b = untraced.peekLogits(key, 8);
    size_t bytes = a == nullptr
                       ? 0
                       : size_t(a->rows() * a->cols()) * sizeof(float);
    bool identical = a != nullptr && b != nullptr &&
                     a->rows() == b->rows() && a->cols() == b->cols() &&
                     std::memcmp(a->data().data(), b->data().data(),
                                 bytes) == 0;
    std::string tracePath =
        cfg.getString("trace_out", "BENCH_obs_trace.json");
    bool traceWritten = traced.trace().writeChromeTraceFile(tracePath);
    json.add("identity")
        .set("served_ok", int64_t(servedOk ? 1 : 0))
        .set("logits_identical", int64_t(identical ? 1 : 0))
        .set("logit_bytes", int64_t(bytes))
        .set("sample_trace", tracePath)
        .set("sample_trace_spans", int64_t(traced.trace().size()));
    std::cout << "sharded int8 logits traced vs untraced: "
              << (identical ? "byte-identical" : "DIVERGED") << " ("
              << bytes << " bytes)\nsample trace: " << tracePath << " ("
              << traced.trace().size() << " spans)\n";

    json.writeFile(cfg.getString("out", "BENCH_obs.json"));

    // --------------------------------------------------------- CI gates
    if (cfg.getInt("check", 0) != 0) {
        GCOD_ASSERT(spanShare <= 0.03, "span recording cost ", spanShare,
                    " of round CPU exceeds the 3% budget");
        GCOD_ASSERT(overhead <= kDirectBound,
                    "direct traced/untraced CPU delta ", overhead,
                    " exceeds the ", kDirectBound,
                    " sanity bound — tracing is paying a cost the "
                    "span-share gate cannot see");
        GCOD_ASSERT(tracedSpans > 0,
                    "traced rounds recorded no spans — the gate is "
                    "vacuous");
        GCOD_ASSERT(tracedDropped == 0, "traced rounds dropped ",
                    tracedDropped, " spans");
        GCOD_ASSERT(servedOk, "traced sharded engine failed to serve");
        GCOD_ASSERT(identical, "logits diverged between traced and "
                    "untraced execution");
        GCOD_ASSERT(traceWritten, "failed to write the sample trace");
    }
}

/** Microbenchmark: recording one span with three attributes. */
void
BM_RecordSpan(benchmark::State &state)
{
    obs::TraceRecorder rec(obs::kTraceKernels);
    uint64_t recorded = 0;
    for (auto _ : state) {
        obs::ScopedSpan s(&rec, obs::kTraceKernels, "bm", "bench");
        s.attr("a", int64_t(1)).attr("b", "x").attr("c", 0.5);
        if (++recorded % (1u << 19) == 0)
            rec.clear();
    }
}
BENCHMARK(BM_RecordSpan);

/** Microbenchmark: the disabled hot path (the cost everyone pays). */
void
BM_DisabledSpan(benchmark::State &state)
{
    obs::TraceRecorder rec(obs::kTraceOff);
    for (auto _ : state) {
        obs::ScopedSpan s(&rec, obs::kTraceRequests, "bm", "bench");
        s.attr("a", int64_t(1));
        benchmark::DoNotOptimize(s.active());
    }
}
BENCHMARK(BM_DisabledSpan);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, obsOverheadBench);
}
