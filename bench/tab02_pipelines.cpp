/**
 * @file
 * Reproduces paper Tab. II (and the Sec. VI-D discussion): the trade-off
 * between the efficiency-aware and resource-aware inter-phase pipelines —
 * on-chip storage demand vs off-chip accesses — for GCN across datasets.
 *
 * Expected shape (paper): efficiency-aware wins on small/medium graphs
 * (everything cached); on Reddit the output outgrows the buffers and the
 * resource-aware pipeline yields fewer off-chip accesses than forcing
 * efficiency-aware, at a modest latency cost from the extra adjacency
 * passes.
 */
#include "accel/gcod_accel.hpp"
#include "bench_common.hpp"

using namespace gcod;
using namespace gcod::bench;

namespace {

void
printTable2(Config &cfg)
{
    std::vector<std::string> datasets = {"Cora", "CiteSeer", "Pubmed",
                                         "NELL", "Reddit"};
    double scale = cfg.getDouble("scale", 0.0);

    Table t("Tab. II | Efficiency- vs resource-aware pipeline, GCN");
    t.header({"Dataset", "Output (MiB)", "Pipeline chosen",
              "Eff: off-chip", "Res: off-chip", "Eff: latency",
              "Res: latency"});

    for (const auto &d : datasets) {
        Prepared p = prepare(d, scale);
        ModelSpec spec = specFor("GCN", p);
        GraphInput in = p.gcodInput();

        auto eff = makeGcodAccelerator(32, PipelineForce::Efficiency);
        auto res = makeGcodAccelerator(32, PipelineForce::Resource);
        auto autop = makeGcodAccelerator(32, PipelineForce::Auto);
        DetailedResult re = eff->simulate(spec, in);
        DetailedResult rr = res->simulate(spec, in);
        DetailedResult ra = autop->simulate(spec, in);

        // Output size of the first (widest) aggregation at published size.
        double hidden = double(spec.layers[0].outDim);
        double out_mb = double(p.profile.nodes) * hidden * 4.0 / 1048576.0;
        bool resource_chosen = ra.details.at("resource_aware_layers") > 0.0;
        t.row({d, formatNumber(out_mb),
               resource_chosen ? "resource-aware" : "efficiency-aware",
               formatBytes(re.offChipBytes()), formatBytes(rr.offChipBytes()),
               formatNumber(re.latencySeconds * 1e3) + " ms",
               formatNumber(rr.latencySeconds * 1e3) + " ms"});
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
BM_GcodPipelineSwitch(benchmark::State &state)
{
    static Prepared p = prepare("Reddit");
    ModelSpec spec = specFor("GCN", p);
    GraphInput in = p.gcodInput();
    auto res = makeGcodAccelerator(32, PipelineForce::Resource);
    for (auto _ : state)
        benchmark::DoNotOptimize(res->simulate(spec, in));
}
BENCHMARK(BM_GcodPipelineSwitch);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printTable2);
}
