/**
 * @file
 * Host kernel throughput: serial vs pool-parallel GEMM, SpMM, and fused
 * pipelines, written to BENCH_kernels.json so the perf trajectory is
 * recorded machine-readably instead of eyeballed from stdout.
 *
 * Sweeps dense sizes and power-law sparse graphs (the nnz-balanced SpMM
 * partitioning is exactly where uniform row splits fall over), timing
 * each kernel at threads=1 and at the configured thread count, and
 * emits wall time, GFLOP/s, and speedup per entry.
 *
 *   ./bench_kernel_throughput threads=4
 *   ./bench_kernel_throughput quick=1 out=BENCH_kernels.json
 *
 * Keys: threads (pool size; default GCOD_THREADS/hardware), quick
 * (CI smoke sizes), reps (best-of repetitions), out (JSON path).
 */
#include "bench_common.hpp"

#include <chrono>
#include <cstdio>

#include "graph/generate.hpp"
#include "sim/rng.hpp"
#include "tensor/fused.hpp"
#include "tensor/ops.hpp"

using namespace gcod;
using gcod::bench::JsonEmitter;

namespace {

Matrix
randomDense(int64_t r, int64_t c, Rng &rng)
{
    Matrix m(r, c);
    for (auto &v : m.data())
        v = float(rng.normal(0.0, 1.0));
    return m;
}

/** Best-of-@p reps wall time of fn(), in seconds. */
template <typename Fn>
double
timeBest(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
        if (i == 0 || s < best)
            best = s;
    }
    return best;
}

/**
 * Time @p fn serially and on @p threads pool threads, record one JSON
 * entry, and print a summary line. @p flops derives GFLOP/s.
 */
template <typename Fn>
void
compare(JsonEmitter &json, const std::string &name, const std::string &kind,
        int threads, int reps, double flops, Fn &&fn, JsonEmitter::Entry **out)
{
    setThreads(1);
    double serial = timeBest(reps, fn);
    setThreads(threads);
    double parallel = timeBest(reps, fn);
    double speedup = parallel > 0.0 ? serial / parallel : 0.0;
    JsonEmitter::Entry &e =
        json.add(name)
            .set("kind", kind)
            .set("threads", threads)
            .set("serial_seconds", serial)
            .set("parallel_seconds", parallel)
            .set("serial_gflops", flops / std::max(serial, 1e-12) / 1e9)
            .set("parallel_gflops", flops / std::max(parallel, 1e-12) / 1e9)
            .set("speedup", speedup);
    std::printf("%-28s %8.2f ms -> %8.2f ms  (%.2fx @ %d threads)\n",
                name.c_str(), serial * 1e3, parallel * 1e3, speedup,
                threads);
    if (out)
        *out = &e;
}

void
runSweep(const Config &cfg)
{
    bool quick = cfg.getBool("quick", false);
    int threads = currentThreads();
    int reps = int(cfg.getInt("reps", quick ? 2 : 3));
    std::string out = cfg.getString("out", "BENCH_kernels.json");

    JsonEmitter json;
    json.meta()
        .set("bench", "kernel_throughput")
        .set("threads", threads)
        .set("hardware_threads", hardwareThreads())
        .set("quick", int64_t(quick));

    std::printf("kernel throughput: %d thread(s), %d hardware, reps=%d\n\n",
                threads, hardwareThreads(), reps);
    Rng rng(42);

    // ---------------------------------------------------------- dense GEMM
    std::vector<int64_t> sizes =
        quick ? std::vector<int64_t>{128, 256}
              : std::vector<int64_t>{256, 512, 1024};
    for (int64_t n : sizes) {
        Matrix a = randomDense(n, n, rng);
        Matrix b = randomDense(n, n, rng);
        JsonEmitter::Entry *e = nullptr;
        compare(
            json, "gemm_" + std::to_string(n), "gemm", threads, reps,
            2.0 * double(n) * double(n) * double(n),
            [&] { benchmark::DoNotOptimize(matmul(a, b)); }, &e);
        e->set("m", n).set("n", n).set("k", n);
    }
    // Backward-pass GEMM variants at one representative size.
    {
        int64_t n = quick ? 256 : 512;
        Matrix a = randomDense(n, n, rng);
        Matrix b = randomDense(n, n, rng);
        double flops = 2.0 * double(n) * double(n) * double(n);
        compare(json, "gemm_at_b_" + std::to_string(n), "gemm_transposed_a",
                threads, reps, flops,
                [&] { benchmark::DoNotOptimize(matmulTransposedA(a, b)); },
                nullptr);
        compare(json, "gemm_a_bt_" + std::to_string(n), "gemm_transposed_b",
                threads, reps, flops,
                [&] { benchmark::DoNotOptimize(matmulTransposedB(a, b)); },
                nullptr);
    }

    // -------------------------------------------------- power-law SpMM
    struct SpmmCase
    {
        NodeId nodes;
        NodeId attach;
        int64_t cols;
    };
    std::vector<SpmmCase> cases =
        quick ? std::vector<SpmmCase>{{4000, 4, 32}}
              : std::vector<SpmmCase>{{30000, 2, 64},
                                      {30000, 4, 64},
                                      {30000, 4, 128},
                                      {60000, 4, 64}};
    for (const SpmmCase &sc : cases) {
        Graph g = barabasiAlbert(sc.nodes, sc.attach, rng);
        const CsrMatrix &adj = g.adjacency();
        Matrix x = randomDense(sc.nodes, sc.cols, rng);
        JsonEmitter::Entry *e = nullptr;
        compare(
            json,
            "spmm_ba_n" + std::to_string(sc.nodes) + "_e" +
                std::to_string(adj.nnz()) + "_f" + std::to_string(sc.cols),
            "spmm", threads, reps, 2.0 * double(adj.nnz()) * double(sc.cols),
            [&] { benchmark::DoNotOptimize(spmmRowWise(adj, x)); }, &e);
        e->set("nodes", int64_t(sc.nodes))
            .set("edges", int64_t(adj.nnz()))
            .set("feature_cols", sc.cols)
            .set("sparsity", adj.sparsity());
    }

    // ----------------------------------------------------- fused pipelines
    {
        NodeId n = quick ? 1500 : 4000;
        Graph g = barabasiAlbert(n, 4, rng);
        CscMatrix csc = g.adjacency().toCsc();
        int64_t f = 64, h = 64;
        Matrix x = randomDense(n, f, rng);
        Matrix w = randomDense(f, h, rng);
        double flops = 2.0 * (double(n) * double(f) * double(h) +
                              double(g.adjacency().nnz()) * double(h));
        FusedStats st;
        compare(json, "fused_efficiency", "fused", threads, reps, flops,
                [&] {
                    benchmark::DoNotOptimize(
                        fusedEfficiencyAware(csc, x, w, &st));
                },
                nullptr);
        compare(json, "fused_resource", "fused", threads, reps, flops,
                [&] {
                    benchmark::DoNotOptimize(
                        fusedResourceAware(csc, x, w, &st));
                },
                nullptr);
    }

    setThreads(threads);
    if (json.writeFile(out))
        std::printf("\nwrote %s\n", out.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    return gcod::bench::benchMain(
        argc, argv, [&](Config &cfg) { runSweep(cfg); });
}
