/**
 * @file
 * Reproduces paper Fig. 10: normalized speedups (vs PyG-CPU) on the large
 * datasets — GCN/GIN/GAT/GraphSAGE on NELL and Reddit, plus ResGCN on
 * Ogbn-ArXiv. Synthetic stand-ins run down-scaled (scale=... to override)
 * and costs extrapolate to the published node counts.
 *
 * Expected shape (paper): the gap to the frameworks widens with graph
 * size (GCoD hits ~4.5e4x on Reddit); AWB-GCN stays within ~2-3x of GCoD.
 */
#include "bench_common.hpp"

using namespace gcod;
using namespace gcod::bench;

namespace {

void
printFigure10(Config &cfg)
{
    struct Row
    {
        std::string model;
        std::vector<std::string> datasets;
    };
    std::vector<Row> rows = {
        {"GCN", {"NELL", "Reddit"}},
        {"GIN", {"NELL", "Reddit"}},
        {"GAT", {"NELL", "Reddit"}},
        {"GraphSAGE", {"NELL", "Reddit"}},
        {"ResGCN", {"Ogbn-ArXiv"}},
    };
    double scale = cfg.getDouble("scale", 0.0);

    std::map<std::string, Prepared> prep;
    for (const auto &r : rows)
        for (const auto &d : r.datasets)
            if (!prep.count(d))
                prep.emplace(d, prepare(d, scale));

    std::vector<std::string> platforms = {"PyG-CPU", "PyG-GPU", "DGL-CPU",
                                          "DGL-GPU", "HyGCN",   "AWB-GCN",
                                          "GCoD",    "GCoD(8-bit)"};
    for (const auto &r : rows) {
        Table t("Fig. 10 | " + r.model +
                " speedups over PyG-CPU on large graphs (x)");
        std::vector<std::string> header = {"Platform"};
        for (const auto &d : r.datasets)
            header.push_back(d);
        t.header(header);
        std::map<std::string, double> cpu_latency;
        for (const auto &platform : platforms) {
            auto accel = makeAccelerator(platform);
            std::vector<std::string> cells = {platform};
            for (const auto &d : r.datasets) {
                const Prepared &p = prep.at(d);
                GraphInput in = inputFor(platform, p);
                DetailedResult res =
                    accel->simulate(specFor(r.model, p), in);
                if (platform == "PyG-CPU") {
                    cpu_latency[d] = res.latencySeconds;
                    cells.push_back(
                        "1.0 (" + formatNumber(res.latencySeconds) + " s)");
                } else {
                    cells.push_back(formatSpeedup(cpu_latency[d] /
                                                  res.latencySeconds));
                }
            }
            t.row(cells);
        }
        t.print(std::cout);
        std::cout << "(synthetic scale: ";
        for (const auto &d : r.datasets)
            std::cout << d << "=" << prep.at(d).scaleUsed << " ";
        std::cout << "; costs extrapolated to published sizes)\n\n";
    }
}

/** Microbenchmark: GCoD simulation at Reddit structure scale. */
void
BM_SimulateGcodReddit(benchmark::State &state)
{
    static Prepared p = prepare("Reddit");
    ModelSpec spec = specFor("GCN", p);
    GraphInput in = p.gcodInput();
    auto accel = makeAccelerator("GCoD");
    for (auto _ : state)
        benchmark::DoNotOptimize(accel->simulate(spec, in));
}
BENCHMARK(BM_SimulateGcodReddit);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printFigure10);
}
