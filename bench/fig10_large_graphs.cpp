/**
 * @file
 * Reproduces paper Fig. 10 — normalized speedups (vs PyG-CPU) on the
 * large datasets (GCN/GIN/GAT/GraphSAGE on NELL and Reddit, ResGCN on
 * Ogbn-ArXiv) — on the sharded multi-chip runtime: each platform runs
 * as a fleet of `shards` identical chips (default 4), the synthetic
 * stand-in is cut by the shard planner and *actually executed*
 * shard-by-shard through the platform simulators, and the reported cost
 * is max(chip makespans) + the two-phase halo-exchange cost. No
 * published-size extrapolation: the numbers are real executions at the
 * stand-in scale (scale=... to grow them).
 *
 * Config overrides: scale=0 shards=4 seed=42
 *
 * Expected shape (paper): the gap to the frameworks widens with graph
 * size; AWB-GCN stays within ~2-3x of GCoD. Sharding preserves the
 * ordering — every platform pays the same exchange — while the
 * accelerator gap narrows slightly because the fixed exchange cost
 * dilutes very short passes.
 */
#include "bench_common.hpp"

#include "graph/profiles.hpp"
#include "shard/scheduler.hpp"
#include "sim/rng.hpp"

using namespace gcod;
using namespace gcod::bench;
using namespace gcod::shard;

namespace {

/** One dataset prepared for sharded execution. */
struct ShardedPrepared
{
    DatasetProfile profile;
    SyntheticGraph synth;
    std::shared_ptr<const ShardedArtifact> art;
    double scaleUsed = 1.0;
};

ShardedPrepared
prepareSharded(const std::string &dataset, double scale, int shards,
               uint64_t seed)
{
    ShardedPrepared p;
    p.profile = profileByName(dataset);
    p.scaleUsed = scale > 0.0 ? scale : defaultScale(dataset);
    Rng rng(seed);
    p.synth = synthesize(p.profile, p.scaleUsed, rng);
    p.art = buildShardedArtifact(p.synth.graph, shards, {}, seed);
    return p;
}

void
printFigure10(Config &cfg)
{
    struct Row
    {
        std::string model;
        std::vector<std::string> datasets;
    };
    std::vector<Row> rows = {
        {"GCN", {"NELL", "Reddit"}},
        {"GIN", {"NELL", "Reddit"}},
        {"GAT", {"NELL", "Reddit"}},
        {"GraphSAGE", {"NELL", "Reddit"}},
        {"ResGCN", {"Ogbn-ArXiv"}},
    };
    double scale = cfg.getDouble("scale", 0.0);
    int shards = int(cfg.getInt("shards", 4));
    uint64_t seed = uint64_t(cfg.getInt("seed", 42));

    std::map<std::string, ShardedPrepared> prep;
    for (const auto &r : rows)
        for (const auto &d : r.datasets)
            if (!prep.count(d))
                prep.emplace(d, prepareSharded(d, scale, shards, seed));

    std::vector<std::string> platforms = {"PyG-CPU", "PyG-GPU", "DGL-CPU",
                                          "DGL-GPU", "HyGCN",   "AWB-GCN",
                                          "GCoD",    "GCoD(8-bit)"};
    // One fleet (scheduler) per platform, reused across every row.
    std::map<std::string, std::unique_ptr<ShardScheduler>> fleets;
    for (const auto &platform : platforms) {
        ShardScheduler::Options sopts;
        sopts.chips.assign(size_t(shards), platform);
        fleets.emplace(platform,
                       std::make_unique<ShardScheduler>(sopts));
    }

    for (const auto &r : rows) {
        Table t("Fig. 10 | " + r.model + " speedups over PyG-CPU, " +
                std::to_string(shards) + "-chip sharded execution (x)");
        std::vector<std::string> header = {"Platform"};
        for (const auto &d : r.datasets)
            header.push_back(d);
        t.header(header);
        std::map<std::string, double> cpu_latency;
        for (const auto &platform : platforms) {
            ShardScheduler &fleet = *fleets.at(platform);
            std::vector<std::string> cells = {platform};
            for (const auto &d : r.datasets) {
                const ShardedPrepared &p = prep.at(d);
                ModelSpec spec =
                    makeModelSpec(r.model, p.profile.features,
                                  p.profile.classes, true);
                ShardScheduleResult res =
                    fleet.schedule(p.art->plan, p.art->units, spec,
                                   p.profile.featureDensity);
                if (platform == "PyG-CPU") {
                    cpu_latency[d] = res.latencySeconds;
                    cells.push_back(
                        "1.0 (" + formatNumber(res.latencySeconds) +
                        " s)");
                } else {
                    cells.push_back(formatSpeedup(
                        cpu_latency[d] / res.latencySeconds));
                }
            }
            t.row(cells);
        }
        t.print(std::cout);
        std::cout << "(executed sharded, no extrapolation: ";
        for (const auto &d : r.datasets) {
            const ShardedPrepared &p = prep.at(d);
            std::cout << d << "=" << p.synth.graph.numNodes()
                      << " nodes/" << p.synth.graph.numEdges()
                      << " edges @ scale " << p.scaleUsed << ", cut "
                      << formatNumber(p.art->plan.edgeCutFraction *
                                      100.0)
                      << "% ";
        }
        std::cout << ")\n\n";
    }
}

/** Microbenchmark: 4-chip GCoD fleet pass at Reddit structure scale. */
void
BM_ShardedGcodReddit(benchmark::State &state)
{
    static ShardedPrepared p = prepareSharded("Reddit", 0.0, 4, 42);
    static ShardScheduler fleet([] {
        ShardScheduler::Options o;
        o.chips.assign(4, "GCoD");
        return o;
    }());
    ModelSpec spec = makeModelSpec("GCN", p.profile.features,
                                   p.profile.classes, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            fleet.schedule(p.art->plan, p.art->units, spec,
                           p.profile.featureDensity));
}
BENCHMARK(BM_ShardedGcodReddit);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printFigure10);
}
