/**
 * @file
 * Serving-engine throughput bench: synthetic open-loop traffic over a
 * skewed multi-dataset mix, executed through the batched multi-backend
 * engine. Reports sustained throughput, end-to-end p50/p99 latency, mean
 * batch size, the artifact-cache hit rate, and the per-backend dispatch
 * split — the serving-side counterparts of the paper's Fig. 9/10 speedup
 * tables.
 *
 * Config overrides (key=value):
 *   requests=4000 rate=50000 workers=4 maxbatch=32 delay_us=2000
 *   policy=adaptive|timeout|fixed backends=GCoD,HyGCN,AWB-GCN,DGL-GPU
 *   scale=0 seed=42 out=BENCH_serve.json
 *   store_dir=<path> check_store=0 besteffort_max=0 standard_max=0
 *   queue_max=0
 *
 * Traffic is mixed-tier (20% latency / 60% standard / 20% best-effort),
 * so the per-tier p50/p99 and shed counters land in the JSON alongside
 * the aggregate numbers. The admission knobs default to unlimited; set
 * e.g. besteffort_max=64 to watch load shedding drop the cheapest tier
 * first.
 *
 * A second phase measures the persistent artifact store: artifacts are
 * built cold into store_dir (default: a scratch dir under /tmp), then a
 * fresh engine warm-starts from the saved files. check_store=1 gates
 * warm start being >= 10x faster than the cold build — the store's
 * reason to exist.
 *
 * Results are also written as machine-readable JSON (out=...) via the
 * shared JsonEmitter, so the serving-throughput trajectory is tracked
 * across commits like the kernel and shard benches. The build-vs-serve
 * split is explicit: `artifact_build_s` is cold pipeline time,
 * `serve_s` is the timed traffic window, and the `store` section holds
 * the cold/warm comparison.
 *
 * Backends accept registry spec strings ("GCoD@bits=8"). Separate the
 * list with ';' when a spec itself contains commas, e.g.
 * backends=GCoD@freq=0.5,onchip=16MiB;HyGCN — a ',' only splits the
 * list when no ';' is present.
 */
#include "bench_common.hpp"

#include <algorithm>
#include <filesystem>
#include <thread>

#include "serve/engine.hpp"
#include "sim/rng.hpp"
#include "store/artifact_io.hpp"

using namespace gcod;
using namespace gcod::bench;
using namespace gcod::serve;

namespace {

std::vector<std::string>
splitList(const std::string &csv)
{
    // Spec strings may contain commas ("GCoD@freq=0.5,onchip=16MiB"),
    // so ';' takes over as the list separator as soon as it appears.
    char sep = csv.find(';') != std::string::npos ? ';' : ',';
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < csv.size()) {
        size_t next = csv.find(sep, pos);
        if (next == std::string::npos)
            next = csv.size();
        if (next > pos)
            out.push_back(csv.substr(pos, next - pos));
        pos = next + 1;
    }
    for (const auto &b : out) {
        // A comma-split token like "onchip=16MiB" is a spec fragment,
        // not a platform; fail with the remedy instead of an opaque
        // unknown-platform error downstream.
        if (b.find('@') == std::string::npos &&
            b.find('=') != std::string::npos)
            GCOD_FATAL("backend '", b, "' looks like a fragment of a "
                       "comma-containing spec; separate backends with "
                       "';' (e.g. backends=GCoD@freq=0.5,onchip=16MiB;"
                       "HyGCN)");
    }
    return out;
}

BatchPolicy
policyFromName(const std::string &name)
{
    if (name == "fixed")
        return BatchPolicy::FixedSize;
    if (name == "timeout")
        return BatchPolicy::Timeout;
    return BatchPolicy::Adaptive;
}

/** Skewed traffic mix: hot citation graphs, an occasional big graph. */
struct TrafficMix
{
    std::vector<std::string> datasets{"Cora", "CiteSeer", "Pubmed"};
    std::vector<double> weights{0.55, 0.30, 0.15};

    const std::string &
    pick(double u) const
    {
        double acc = 0.0;
        for (size_t i = 0; i < datasets.size(); ++i) {
            acc += weights[i];
            if (u <= acc)
                return datasets[i];
        }
        return datasets.back();
    }
};

/** Mixed-tier assignment: 20% latency / 60% standard / 20% best-effort. */
SloTier
pickTier(double u)
{
    if (u < 0.2)
        return SloTier::Latency;
    return u < 0.8 ? SloTier::Standard : SloTier::BestEffort;
}

/**
 * Store phase: build the traffic mix's artifacts cold into @p dir
 * (persisting them), then warm-start a fresh engine from the saved
 * files. Returns {cold_build_s, warm_load_s}.
 */
std::pair<double, double>
storeWarmStart(const ServeOptions &base, const TrafficMix &mix,
               const std::string &dir)
{
    std::filesystem::remove_all(dir);
    ServeOptions opts = base;
    opts.storeDir = dir;
    opts.admission = {}; // measure builds, not shedding

    double cold = 0.0;
    {
        ServingEngine engine(opts);
        std::vector<std::future<InferenceReply>> futs;
        for (const auto &d : mix.datasets)
            futs.push_back(engine.submit({0, d, "GCN", 0}));
        engine.drain();
        for (auto &f : futs)
            f.get();
        cold = engine.cache().totalBuildSeconds();
        // Re-save with the memoized logits so the warm process skips
        // even the first host execution pass per artifact.
        for (const auto &d : mix.datasets)
            engine.saveArtifact(engine.keyFor(d, "GCN"));
    }

    ServingEngine warm(opts);
    std::vector<std::future<InferenceReply>> futs;
    for (const auto &d : mix.datasets)
        futs.push_back(warm.submit({0, d, "GCN", 0}));
    warm.drain();
    for (auto &f : futs)
        GCOD_ASSERT(f.get().ok(), "warm-start request failed");
    // Store loads overwrite bundle buildSeconds with the load wall
    // time, so the cache's build accounting *is* the warm-start cost.
    return {cold, warm.cache().totalBuildSeconds()};
}

void
serveTraffic(Config &cfg)
{
    ServeOptions opts;
    opts.workers = size_t(cfg.getInt("workers", 4));
    opts.cacheCapacity = size_t(cfg.getInt("cache", 8));
    opts.artifactScale = cfg.getDouble("scale", 0.0);
    opts.artifactSeed = uint64_t(cfg.getInt("seed", 42));
    opts.batching.policy =
        policyFromName(cfg.getString("policy", "adaptive"));
    opts.batching.maxBatch = size_t(cfg.getInt("maxbatch", 32));
    opts.batching.maxDelay =
        std::chrono::microseconds(cfg.getInt("delay_us", 2000));
    // The default mix includes a parameterized GCoD variant built from a
    // spec string — no dedicated class or registry edit behind it.
    std::string backends =
        cfg.getString("backends", "GCoD,GCoD@bits=8,HyGCN,AWB-GCN,DGL-GPU");
    opts.backends = splitList(backends);
    opts.admission.bestEffortMaxDepth =
        size_t(cfg.getInt("besteffort_max", 0));
    opts.admission.standardMaxDepth = size_t(cfg.getInt("standard_max", 0));
    opts.admission.maxQueueDepth = size_t(cfg.getInt("queue_max", 0));

    int64_t requests = cfg.getInt("requests", 4000);
    double rate = cfg.getDouble("rate", 50000.0); // arrivals per second

    ServingEngine engine(opts);
    TrafficMix mix;
    Rng rng(opts.artifactSeed);

    // Warm the cache outside the timed window so the measured traffic
    // sees the steady serving state (misses are a cold-start artifact).
    std::vector<std::future<InferenceReply>> warm;
    for (const auto &d : mix.datasets)
        warm.push_back(engine.submit({0, d, "GCN", 0}));
    engine.drain();
    for (auto &f : warm)
        f.get();
    double warm_seconds = engine.cache().totalBuildSeconds();

    // Open-loop Poisson-ish arrivals: fixed rate, never waits on replies.
    auto t0 = Clock::now();
    auto next = t0;
    std::vector<std::future<InferenceReply>> futures;
    futures.reserve(size_t(requests));
    for (int64_t i = 0; i < requests; ++i) {
        const std::string &dataset = mix.pick(rng.uniformReal());
        InferenceRequest req;
        req.dataset = dataset;
        req.node = NodeId(rng.uniformInt(0, 999));
        req.tier = pickTier(rng.uniformReal());
        futures.push_back(engine.submit(std::move(req)));
        next += std::chrono::nanoseconds(int64_t(1e9 / rate));
        std::this_thread::sleep_until(next);
    }
    engine.drain();
    double serve_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    size_t ok = 0, shed = 0;
    for (auto &f : futures) {
        InferenceReply r = f.get();
        ok += r.ok() ? 1 : 0;
        shed += r.shed ? 1 : 0;
    }

    ServerStats &stats = engine.stats();
    Table t("Serving | open-loop traffic (" + std::to_string(requests) +
            " requests @ " + formatNumber(rate) + "/s, policy=" +
            batchPolicyName(opts.batching.policy) + ")");
    t.header({"Metric", "Value"});
    t.row({"completed ok", std::to_string(ok)});
    t.row({"shed", std::to_string(shed)});
    t.row({"throughput (req/s)",
           formatNumber(double(ok) / serve_seconds)});
    t.row({"latency p50 (ms)",
           formatNumber(stats.latencyPercentile(50.0) * 1e3)});
    t.row({"latency p99 (ms)",
           formatNumber(stats.latencyPercentile(99.0) * 1e3)});
    t.row({"mean batch size", formatNumber(stats.meanBatchSize())});
    t.row({"accelerator passes", std::to_string(stats.batches())});
    t.row({"cache hit rate", formatNumber(engine.cache().hitRate())});
    t.row({"artifact build (s, warmup)", formatNumber(warm_seconds)});
    t.print(std::cout);

    Table tiers("Serving | per-SLO-tier latency");
    tiers.header({"Tier", "Completed", "Shed", "p50 (ms)", "p99 (ms)"});
    for (SloTier tier :
         {SloTier::Latency, SloTier::Standard, SloTier::BestEffort})
        tiers.row(
            {sloTierName(tier),
             std::to_string(stats.tierCompleted(tier)),
             std::to_string(stats.tierShed(tier)),
             formatNumber(stats.tierLatencyPercentile(tier, 50.0) * 1e3),
             formatNumber(stats.tierLatencyPercentile(tier, 99.0) * 1e3)});
    tiers.print(std::cout);

    Table b("Serving | per-backend dispatch split");
    b.header({"Backend", "Requests", "Share"});
    auto counts = stats.backendCounts();
    double total = double(stats.completed());
    for (const auto &[name, n] : counts)
        b.row({name, std::to_string(n), formatNumber(double(n) / total)});
    b.print(std::cout);

    std::cout << "\nFull stats group:\n";
    stats.print(std::cout, engine.cache().hitRate());
    std::cout << '\n';

    JsonEmitter json;
    json.meta()
        .set("bench", "serve_throughput")
        .set("requests", requests)
        .set("rate_per_sec", rate)
        .set("workers", int64_t(opts.workers))
        .set("policy", batchPolicyName(opts.batching.policy))
        .set("backends", backends);
    json.add("traffic")
        .set("completed_ok", int64_t(ok))
        .set("shed", int64_t(shed))
        // Build cost and serving wall clock are distinct budgets: the
        // first is what the artifact store eliminates, the second is
        // what the engine sustains.
        .set("artifact_build_s", warm_seconds)
        .set("serve_s", serve_seconds)
        .set("throughput_req_per_sec", double(ok) / serve_seconds)
        .set("latency_p50_ms", stats.latencyPercentile(50.0) * 1e3)
        .set("latency_p99_ms", stats.latencyPercentile(99.0) * 1e3)
        .set("mean_batch_size", stats.meanBatchSize())
        .set("accelerator_passes", int64_t(stats.batches()))
        .set("cache_hit_rate", engine.cache().hitRate());
    for (SloTier tier :
         {SloTier::Latency, SloTier::Standard, SloTier::BestEffort})
        json.add(std::string("tier_") + sloTierName(tier))
            .set("tier", sloTierName(tier))
            .set("completed", int64_t(stats.tierCompleted(tier)))
            .set("shed", int64_t(stats.tierShed(tier)))
            .set("latency_p50_ms",
                 stats.tierLatencyPercentile(tier, 50.0) * 1e3)
            .set("latency_p99_ms",
                 stats.tierLatencyPercentile(tier, 99.0) * 1e3);
    for (const auto &[name, n] : counts)
        json.add("backend_" + name)
            .set("backend", name)
            .set("requests", int64_t(n))
            .set("share", double(n) / total);

    // ------------------------------------------------ store warm start
    std::string storeDir = cfg.getString(
        "store_dir",
        (std::filesystem::temp_directory_path() / "gcod_store_bench")
            .string());
    auto [cold_s, warm_s] = storeWarmStart(opts, mix, storeDir);
    double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
    Table st("Serving | persistent artifact store");
    st.header({"Metric", "Value"});
    st.row({"cold build (s)", formatNumber(cold_s)});
    st.row({"warm load (s)", formatNumber(warm_s)});
    st.row({"warm speedup", formatNumber(speedup)});
    st.print(std::cout);
    json.add("store")
        .set("dir", storeDir)
        .set("cold_build_s", cold_s)
        .set("warm_load_s", warm_s)
        .set("warm_speedup", speedup);

    json.writeFile(cfg.getString("out", "BENCH_serve.json"));

    if (cfg.getInt("check_store", 0) != 0)
        GCOD_ASSERT(speedup >= 10.0,
                    "store warm start must be >= 10x faster than a cold "
                    "artifact build (got ", speedup, "x)");
    size_t admitted = size_t(requests) - shed;
    GCOD_ASSERT(ok == admitted, "admitted requests failed during bench");
    GCOD_ASSERT(engine.cache().hitRate() > 0.0,
                "repeated-dataset traffic must hit the artifact cache");
    GCOD_ASSERT(counts.size() >= std::min<size_t>(2, opts.backends.size()),
                "load-aware routing should exercise >= 2 backends");
}

/** Microbenchmark: end-to-end engine pass for one 32-request burst. */
void
BM_ServeBurst32(benchmark::State &state)
{
    ServeOptions opts;
    opts.backends = {"GCoD", "HyGCN"};
    opts.workers = 2;
    opts.batching.policy = BatchPolicy::FixedSize;
    opts.batching.maxBatch = 32;
    ServingEngine engine(opts);
    engine.submit({0, "Cora", "GCN", 0});
    engine.drain(); // warm the artifact cache
    for (auto _ : state) {
        std::vector<std::future<InferenceReply>> futures;
        futures.reserve(32);
        for (int i = 0; i < 32; ++i)
            futures.push_back(engine.submit({0, "Cora", "GCN", 0}));
        engine.drain();
        for (auto &f : futures)
            benchmark::DoNotOptimize(f.get());
    }
}
BENCHMARK(BM_ServeBurst32);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, serveTraffic);
}
