/**
 * @file
 * Reproduces paper Tab. VII: test accuracy of GCoD against the SOTA GCN
 * compression baselines (RP, SGCN, QAT, Degree-Quant) plus the vanilla
 * model, for GCN / GAT / GIN / GraphSAGE on five datasets.
 *
 * This bench runs the *full* training pipelines (pretrain, ADMM tune,
 * retrain), so it uses short default epoch budgets and down-scaled large
 * datasets; override with epochs=400 scale=1 for a paper-scale run.
 *
 * Expected shape (paper): GCoD matches or beats the vanilla accuracy
 * (+0.1% to +4.2% over baselines) while RP loses accuracy; GCoD (8-bit)
 * stays within ~1% of GCoD.
 */
#include "bench_common.hpp"
#include "compress/compress.hpp"
#include "nn/dataset.hpp"

using namespace gcod;
using namespace gcod::bench;

namespace {

void
printTable7(Config &cfg)
{
    // Default scope is a CI-fast subset; pass full=1 (or model=/dataset=)
    // for the paper's complete 4-model x 5-dataset sweep.
    std::vector<std::string> models = {"GCN", "GIN"};
    std::vector<std::string> datasets = {"Cora", "CiteSeer", "Pubmed"};
    if (cfg.getBool("full")) {
        models = {"GCN", "GAT", "GIN", "GraphSAGE", "ResGCN"};
        datasets = {"Cora", "CiteSeer", "Pubmed", "NELL", "Reddit"};
    }
    if (cfg.has("model"))
        models = {cfg.getString("model")};
    if (cfg.has("dataset"))
        datasets = {cfg.getString("dataset")};
    int epochs = int(cfg.getInt("epochs", 30));
    double scale_override = cfg.getDouble("scale", 0.0);

    // Accuracy runs need actual training, so the large datasets run at
    // small scale by default (structure and label process preserved).
    std::map<std::string, double> acc_scale = {
        {"Cora", 0.6}, {"CiteSeer", 0.6},   {"Pubmed", 0.12},
        {"NELL", 0.02}, {"Ogbn-ArXiv", 0.015}, {"Reddit", 0.006}};

    TrainOptions topts;
    topts.epochs = epochs;

    for (const auto &model : models) {
        Table t("Tab. VII | Test accuracy (%), " + model);
        std::vector<std::string> header = {"Method"};
        for (const auto &d : datasets)
            header.push_back(d);
        t.header(header);

        std::map<std::string, std::vector<std::string>> rows;
        std::vector<std::string> order = {
            "Vanilla", "RP",   "SGCN",        "QAT",
            "Degree-Quant", "GCoD", "GCoD (8-bit)"};
        for (const auto &m : order)
            rows[m] = {m};

        for (const auto &d : datasets) {
            double scale =
                scale_override > 0.0 ? scale_override : acc_scale[d];
            Rng rng(17);
            SyntheticGraph synth =
                synthesize(profileByName(d), scale, rng);
            Dataset ds = materialize(synth, rng);
            auto pct = [](double a) { return formatPercent(a); };

            // Vanilla.
            {
                GraphContext ctx(ds.synth.graph);
                Rng mr(23);
                auto m = makeModel(model, ds.featureDim(), ds.numClasses(),
                                   synth.original.nodes >= kLargeGraphNodes, mr);
                TrainReport tr = train(*m, ctx, ds, topts);
                rows["Vanilla"].push_back(pct(tr.testAccuracy));
            }
            Rng cr(29);
            rows["RP"].push_back(
                pct(randomPrune(ds, model, 0.10, topts, cr).testAccuracy));
            rows["SGCN"].push_back(pct(
                sgcnSparsify(ds, model, 0.10, topts, cr).testAccuracy));
            rows["QAT"].push_back(
                pct(qatTrain(ds, model, 8, topts, cr).testAccuracy));
            rows["Degree-Quant"].push_back(pct(
                degreeQuant(ds, model, 8, 0.1, topts, cr).testAccuracy));

            // GCoD full pipeline.
            GcodOptions gopts;
            gopts.model = model;
            gopts.pretrain.epochs = epochs;
            gopts.retrain.epochs = epochs;
            GcodOutcome out = runGcodPipeline(ds, gopts);
            rows["GCoD"].push_back(pct(out.finalAccuracy));
            rows["GCoD (8-bit)"].push_back(pct(out.finalAccuracyInt8));
        }
        for (const auto &m : order)
            t.row(rows[m]);
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "(synthetic planted-partition datasets; absolute accuracy "
                 "differs from the paper's real datasets — compare method "
                 "orderings, not levels)\n";
}

void
BM_TrainGcnEpochCora(benchmark::State &state)
{
    Rng rng(5);
    static SyntheticGraph synth =
        synthesize(profileByName("Cora"), 1.0, rng);
    static Dataset ds = materialize(synth, rng);
    static GraphContext ctx(ds.synth.graph);
    auto m = makeModel("GCN", ds.featureDim(), ds.numClasses(), false, rng);
    for (auto _ : state) {
        Matrix logits = m->forward(ctx, ds.features);
        Matrix probs = softmaxRows(logits);
        Matrix g = softmaxCrossEntropyBackward(probs, ds.labels,
                                               ds.trainMask);
        m->backward(ctx, ds.features, g);
        benchmark::DoNotOptimize(m->gradients());
    }
}
BENCHMARK(BM_TrainGcnEpochCora);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printTable7);
}
