/**
 * @file
 * Shard-scaling bench: one GCN inference over a power-law graph executed
 * by the sharded multi-chip runtime at 1..N chips, reporting makespan,
 * halo-exchange cost, edge-cut %, halo volume, and scaling efficiency
 * versus a single chip — written to BENCH_shard.json via the shared
 * JsonEmitter so the scaling trajectory is tracked across commits.
 *
 * Config overrides (key=value):
 *   n=20000 m=8 chips=4 chip=GCoD out=BENCH_shard.json seed=1
 *   dataset=  (set e.g. dataset=Reddit scale=0.02 to run a Tab. III
 *              stand-in instead of the Barabási–Albert graph)
 *   fleet=    (chip-count spec for the mixed-fleet row, e.g.
 *              fleet='2xGCoD;2xGCoD@bits=8' — see parseFleetSpec)
 *
 * Expected shape: makespan decreases monotonically with the chip count
 * (asserted); the exchange cost *grows* with the cut, so aggregate
 * latency scales sublinearly — the halo traffic is exactly the paper's
 * irregular-aggregation tax resurfacing at the fabric level.
 */
#include "bench_common.hpp"

#include "graph/profiles.hpp"
#include "shard/scheduler.hpp"
#include "sim/rng.hpp"

using namespace gcod;
using namespace gcod::bench;
using namespace gcod::shard;

namespace {

struct ScalingPoint
{
    int chips = 0;
    std::shared_ptr<const ShardedArtifact> art;
    ShardScheduleResult result;
};

Graph
benchGraph(Config &cfg, std::string &desc)
{
    std::string dataset = cfg.getString("dataset", "");
    Rng rng(uint64_t(cfg.getInt("seed", 1)));
    if (!dataset.empty()) {
        double scale = cfg.getDouble("scale", 0.0);
        const DatasetProfile &profile = profileByName(dataset);
        SyntheticGraph synth = synthesize(
            profile, scale > 0.0 ? scale : defaultScale(dataset), rng);
        desc = dataset + " stand-in";
        return synth.graph;
    }
    NodeId n = NodeId(cfg.getInt("n", 20000));
    NodeId m = NodeId(cfg.getInt("m", 8));
    desc = "Barabasi-Albert(" + std::to_string(n) + ", " +
           std::to_string(m) + ")";
    return barabasiAlbert(n, m, rng);
}

void
shardScaling(Config &cfg)
{
    std::string desc;
    Graph g = benchGraph(cfg, desc);
    std::string chip = cfg.getString("chip", "GCoD");
    int max_chips = int(cfg.getInt("chips", 4));
    // Reddit-style GCN dimensions: the large-graph serving shape.
    ModelSpec spec = makeModelSpec("GCN", 602, 41, true);

    JsonEmitter json;
    json.meta()
        .set("bench", "shard_scaling")
        .set("graph", desc)
        .set("nodes", int64_t(g.numNodes()))
        .set("edges", int64_t(g.numEdges()))
        .set("chip", chip)
        .set("model", "GCN");

    Table t("Shard scaling | GCN on " + desc + " across " + chip +
            " chips");
    t.header({"Chips", "Makespan (us)", "Exchange (us)", "Latency (us)",
              "Edge cut %", "Halo rows", "Speedup", "Efficiency"});

    // Power-of-two sweep, always ending at the requested chip count
    // (chips=6 benches 1, 2, 4, 6 rather than silently stopping at 4).
    std::vector<int> chip_counts;
    for (int k = 1; k <= max_chips; k *= 2)
        chip_counts.push_back(k);
    if (chip_counts.back() != max_chips)
        chip_counts.push_back(max_chips);

    std::vector<ScalingPoint> points;
    for (int k : chip_counts) {
        ScalingPoint pt;
        pt.chips = k;
        pt.art = buildShardedArtifact(g, k, {},
                                      uint64_t(cfg.getInt("seed", 1)));
        ShardScheduler::Options sopts;
        sopts.chips.assign(size_t(k), chip);
        ShardScheduler sched(sopts);
        pt.result = sched.schedule(pt.art->plan, pt.art->units, spec);
        points.push_back(std::move(pt));
    }

    // The monotone-makespan acceptance check holds on the power-law
    // default (any reasonable n/m); a user-chosen dataset stand-in may
    // legitimately plateau (e.g. one hub shard bounding both 2 and 4
    // chips), which is an informative result, not a fatal one.
    bool strict = cfg.getString("dataset", "").empty() &&
                  cfg.getInt("n", 20000) >= 1000;
    double t1 = points.front().result.makespanSeconds;
    double prev = 0.0;
    for (const ScalingPoint &pt : points) {
        const ShardScheduleResult &r = pt.result;
        double speedup = t1 / r.makespanSeconds;
        double efficiency = speedup / double(pt.chips);
        t.row({std::to_string(pt.chips),
               formatNumber(r.makespanSeconds * 1e6),
               formatNumber(r.exchange.seconds * 1e6),
               formatNumber(r.latencySeconds * 1e6),
               formatNumber(pt.art->plan.edgeCutFraction * 100.0),
               std::to_string(int64_t(pt.art->plan.haloNodes())),
               formatSpeedup(speedup), formatNumber(efficiency)});
        json.add("chips_" + std::to_string(pt.chips))
            .set("chips", pt.chips)
            .set("makespan_seconds", r.makespanSeconds)
            .set("exchange_seconds", r.exchange.seconds)
            .set("latency_seconds", r.latencySeconds)
            .set("edge_cut_pct", pt.art->plan.edgeCutFraction * 100.0)
            .set("halo_rows", int64_t(pt.art->plan.haloNodes()))
            .set("exchange_wire_bytes", r.exchange.wireBytes)
            .set("max_imbalance", pt.art->plan.maxImbalance)
            .set("speedup_vs_1chip", speedup)
            .set("scaling_efficiency", efficiency);
        if (prev > 0.0 && r.makespanSeconds >= prev) {
            GCOD_ASSERT(!strict,
                        "makespan must decrease monotonically with "
                        "chips (", pt.chips, " chips)");
            warn("makespan plateaued at ", pt.chips,
                 " chips on this config");
        }
        prev = r.makespanSeconds;
    }
    t.print(std::cout);

    // A mixed fleet: half the chips run the 8-bit GCoD variant, which
    // the LPT scheduler loads heavier because it finishes shards faster.
    {
        int k = points.back().chips;
        ShardScheduler::Options sopts;
        std::string fleet_spec = cfg.getString("fleet", "");
        if (!fleet_spec.empty()) {
            sopts.chips = parseFleetSpec(fleet_spec);
        } else {
            sopts.chips.clear();
            for (int i = 0; i < k; ++i)
                sopts.chips.push_back(i % 2 ? "GCoD@bits=8" : "GCoD");
        }
        ShardScheduler sched(sopts);
        const ShardedArtifact &last = *points.back().art;
        ShardScheduleResult r = sched.schedule(last.plan, last.units, spec);
        std::cout << "mixed fleet " << sched.fleetName() << ": makespan "
                  << formatNumber(r.makespanSeconds * 1e6)
                  << " us, latency "
                  << formatNumber(r.latencySeconds * 1e6) << " us\n\n";
        json.add("mixed_fleet")
            .set("chips", k)
            .set("fleet", sched.fleetName())
            .set("makespan_seconds", r.makespanSeconds)
            .set("latency_seconds", r.latencySeconds);
    }

    json.writeFile(cfg.getString("out", "BENCH_shard.json"));
}

/** Microbenchmark: schedule one pass over a prebuilt 4-chip fleet. */
void
BM_ShardSchedule4(benchmark::State &state)
{
    static Rng rng(3);
    static Graph g = barabasiAlbert(8000, 6, rng);
    static ShardPlan plan = [] {
        ShardPlanOptions popts;
        popts.shards = 4;
        return buildShardPlan(g, popts);
    }();
    static std::vector<ShardExecution> units =
        buildShardExecutions(g, plan);
    static ShardScheduler sched([] {
        ShardScheduler::Options o;
        o.chips.assign(4, "GCoD");
        return o;
    }());
    ModelSpec spec = makeModelSpec("GCN", 602, 41, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(sched.schedule(plan, units, spec));
}
BENCHMARK(BM_ShardSchedule4);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, shardScaling);
}
