/**
 * @file
 * Reproduces the Sec. IV-B2 training-cost analysis: GCoD's three-step
 * pipeline cost relative to standard GCN training, with and without the
 * early-bird early-stopping.
 *
 * Expected shape (paper): with early-bird, total GCoD training costs
 * 0.7x-1.1x of standard training (at most ~10% overhead), with the three
 * steps at roughly 5% / 50% / 45% of the pipeline cost (Steps 2-3
 * dominated by subnetwork retraining).
 */
#include "bench_common.hpp"
#include "nn/dataset.hpp"

using namespace gcod;
using namespace gcod::bench;

namespace {

void
printTrainingCost(Config &cfg)
{
    std::vector<std::string> datasets = citationDatasetNames();
    if (cfg.has("dataset"))
        datasets = {cfg.getString("dataset")};
    int epochs = int(cfg.getInt("epochs", 60));

    Table t("Training cost | GCoD pipeline vs standard GCN training");
    t.header({"Dataset", "Mode", "Step1 %", "Step2 %", "Step3 %",
              "Overhead vs vanilla", "Final acc", "Vanilla acc"});

    for (const auto &d : datasets) {
        std::map<std::string, double> acc_scale = {
            {"Cora", 0.5}, {"CiteSeer", 0.5}, {"Pubmed", 0.1}};
        Rng rng(31);
        SyntheticGraph synth = synthesize(
            profileByName(d),
            cfg.getDouble("scale", acc_scale.count(d) ? acc_scale[d] : 0.1),
            rng);
        Dataset ds = materialize(synth, rng);

        for (bool early_bird : {true, false}) {
            GcodOptions opts;
            opts.pretrain.epochs = epochs;
            opts.retrain.epochs = epochs;
            opts.pretrain.earlyBird = early_bird;
            opts.retrain.earlyBird = early_bird;
            GcodOutcome out = runGcodPipeline(ds, opts);
            double total =
                out.pretrainCost + out.tuneCost + out.retrainCost;
            t.row({d, early_bird ? "early-bird" : "full",
                   formatPercent(out.pretrainCost / total),
                   formatPercent(out.tuneCost / total),
                   formatPercent(out.retrainCost / total),
                   formatNumber(out.trainingOverheadRatio()) + "x",
                   formatPercent(out.finalAccuracy),
                   formatPercent(out.baselineAccuracy)});
        }
    }
    t.print(std::cout);
    std::cout << "(paper: early-bird keeps GCoD at 0.7x-1.1x of standard "
                 "training; steps split ~5%/50%/45%)\n";
}

void
BM_EarlyBirdMask(benchmark::State &state)
{
    Rng rng(7);
    static SyntheticGraph synth =
        synthesize(profileByName("Cora"), 1.0, rng);
    static Dataset ds = materialize(synth, rng);
    static GraphContext ctx(ds.synth.graph);
    for (auto _ : state) {
        Rng mr(11);
        auto m = makeModel("GCN", ds.featureDim(), ds.numClasses(), false,
                           mr);
        TrainOptions topts;
        topts.epochs = 15;
        topts.earlyBird = true;
        benchmark::DoNotOptimize(train(*m, ctx, ds, topts));
    }
}
BENCHMARK(BM_EarlyBirdMask);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printTrainingCost);
}
