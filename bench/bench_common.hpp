/**
 * @file
 * Shared scaffolding for the reproduction benches: dataset preparation
 * (synthesize at a benchmark-friendly scale, run the structure-only GCoD
 * pipeline, build simulator inputs with published-size extrapolation) and
 * the common main() that prints the paper-style tables before running any
 * registered google-benchmark microbenchmarks.
 */
#ifndef GCOD_BENCH_COMMON_HPP
#define GCOD_BENCH_COMMON_HPP

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/registry.hpp"
#include "gcod/pipeline.hpp"
#include "sim/config.hpp"
#include "sim/table.hpp"

namespace gcod::bench {

/** Everything a simulator-driven bench needs for one dataset. */
struct Prepared
{
    DatasetProfile profile; ///< published statistics
    SyntheticGraph synth;
    GcodOutcome outcome;    ///< structure-only pipeline result
    double scaleUsed = 1.0;

    /** Simulator input for baseline platforms (raw adjacency). */
    GraphInput
    rawInput() const
    {
        GraphInput in = makeGraphInput(synth.graph.adjacency());
        in.publishedNodes = profile.nodes;
        in.featureDensity = profile.featureDensity;
        return in;
    }

    /** Simulator input for the GCoD accelerator (processed adjacency). */
    GraphInput
    gcodInput() const
    {
        GraphInput in = makeGraphInput(outcome.finalGraph.adjacency(),
                                       outcome.workload);
        in.publishedNodes = profile.nodes;
        in.featureDensity = profile.featureDensity;
        return in;
    }

    /** GCoD input before Step 2/3 pruning (Tab. VI "w/o SP" row). */
    GraphInput
    gcodUnprunedInput(const Graph &reordered_holder) const
    {
        GraphInput in = makeGraphInput(reordered_holder.adjacency(),
                                       outcome.workloadAfterReorder);
        in.publishedNodes = profile.nodes;
        in.featureDensity = profile.featureDensity;
        return in;
    }

    bool large() const { return profile.nodes > 20000; }
};

/** Default benchmark scale per dataset (keeps every bench CI-fast). */
inline double
defaultScale(const std::string &dataset)
{
    static const std::map<std::string, double> scales = {
        {"Cora", 1.0},       {"CiteSeer", 1.0}, {"Pubmed", 1.0},
        {"NELL", 0.15},      {"Ogbn-ArXiv", 0.08}, {"Reddit", 0.02},
    };
    auto it = scales.find(dataset);
    return it == scales.end() ? 1.0 : it->second;
}

/**
 * Prepare a dataset: synthesize, run the structure-only GCoD pipeline.
 * @param scale 0 = the per-dataset default.
 */
inline Prepared
prepare(const std::string &dataset, double scale = 0.0,
        GcodOptions opts = {}, uint64_t seed = 42)
{
    Prepared p;
    p.profile = profileByName(dataset);
    p.scaleUsed = scale > 0.0 ? scale : defaultScale(dataset);
    Rng rng(seed);
    p.synth = synthesize(p.profile, p.scaleUsed, rng);
    p.outcome = runGcodStructureOnly(p.synth, opts);
    return p;
}

/**
 * The simulator input @p platform wants for @p p: platforms whose
 * descriptor consumes the GCoD workload get the processed adjacency,
 * everything else the raw one.
 */
inline GraphInput
inputFor(const std::string &platform, const Prepared &p)
{
    return platformConsumesWorkload(platform) ? p.gcodInput()
                                              : p.rawInput();
}

/** Model spec at the dataset's *published* dimensions (Tab. IV). */
inline ModelSpec
specFor(const std::string &model, const Prepared &p)
{
    return makeModelSpec(model, p.profile.features, p.profile.classes,
                         p.large());
}

/**
 * Shared bench main body: parse key=value args, print the reproduction
 * table(s) via @p body, then run registered google-benchmark timers.
 */
inline int
benchMain(int argc, char **argv, const std::function<void(Config &)> &body)
{
    Config cfg;
    // Split args: key=value pairs go to Config; the rest to benchmark.
    std::vector<char *> bench_args{argv[0]};
    for (int i = 1; i < argc; ++i) {
        std::string tok = argv[i];
        if (tok.find('=') != std::string::npos &&
            tok.rfind("--", 0) == std::string::npos) {
            cfg.set(tok.substr(0, tok.find('=')),
                    tok.substr(tok.find('=') + 1));
        } else {
            bench_args.push_back(argv[i]);
        }
    }
    body(cfg);
    int bench_argc = int(bench_args.size());
    benchmark::Initialize(&bench_argc, bench_args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace gcod::bench

#endif // GCOD_BENCH_COMMON_HPP
