/**
 * @file
 * Shared scaffolding for the reproduction benches: dataset preparation
 * (synthesize at a benchmark-friendly scale, run the structure-only GCoD
 * pipeline, build simulator inputs with published-size extrapolation) and
 * the common main() that prints the paper-style tables before running any
 * registered google-benchmark microbenchmarks.
 */
#ifndef GCOD_BENCH_COMMON_HPP
#define GCOD_BENCH_COMMON_HPP

#include <benchmark/benchmark.h>

#include <cstdio>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/registry.hpp"
#include "gcod/pipeline.hpp"
#include "sim/config.hpp"
#include "sim/parallel.hpp"
#include "sim/table.hpp"

namespace gcod::bench {

/**
 * Tiny machine-readable result emitter: benches record named entries
 * (parameters, wall time, derived GFLOP/s, ...) and write them as one
 * JSON document, so perf trajectories can be tracked across commits
 * instead of scraped from stdout. Used by bench_kernel_throughput
 * (BENCH_kernels.json) and available to every other bench.
 */
class JsonEmitter
{
  public:
    /** One result entry; set() calls chain. */
    class Entry
    {
      public:
        explicit Entry(std::string name) : name_(std::move(name)) {}

        Entry &
        set(const std::string &key, const std::string &value)
        {
            fields_.emplace_back(key, quote(value));
            return *this;
        }

        Entry &
        set(const std::string &key, const char *value)
        {
            return set(key, std::string(value));
        }

        Entry &
        set(const std::string &key, double value)
        {
            std::ostringstream os;
            os.precision(9);
            os << value;
            fields_.emplace_back(key, os.str());
            return *this;
        }

        Entry &
        set(const std::string &key, int64_t value)
        {
            fields_.emplace_back(key, std::to_string(value));
            return *this;
        }

        Entry &
        set(const std::string &key, int value)
        {
            return set(key, int64_t(value));
        }

        void
        print(std::ostream &os, const std::string &indent) const
        {
            os << indent << "{\n";
            os << indent << "  \"name\": " << quote(name_);
            for (const auto &[k, v] : fields_)
                os << ",\n" << indent << "  " << quote(k) << ": " << v;
            os << "\n" << indent << "}";
        }

        /** Emit only "key": value pairs, one per line, trailing commas. */
        void
        printFields(std::ostream &os, const std::string &indent) const
        {
            for (const auto &[k, v] : fields_)
                os << indent << quote(k) << ": " << v << ",\n";
        }

      private:
        static std::string
        quote(const std::string &s)
        {
            std::string out = "\"";
            for (char c : s) {
                if (c == '"' || c == '\\') {
                    out += '\\';
                    out += c;
                } else if (c == '\n') {
                    out += "\\n";
                } else if (static_cast<unsigned char>(c) < 0x20) {
                    // All other control characters are invalid raw in
                    // JSON strings.
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  unsigned(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
            }
            out += '"';
            return out;
        }

        std::string name_;
        std::vector<std::pair<std::string, std::string>> fields_;
    };

    /** Start a new entry; returned reference stays valid until write. */
    Entry &
    add(const std::string &name)
    {
        entries_.emplace_back(name);
        return entries_.back();
    }

    /** Document-level field (threads, hardware, scale, ...). */
    Entry &
    meta()
    {
        return meta_;
    }

    std::string
    toJson() const
    {
        std::ostringstream os;
        os << "{\n";
        meta_.printFields(os, "  ");
        os << "  \"entries\": [\n";
        for (size_t i = 0; i < entries_.size(); ++i) {
            entries_[i].print(os, "    ");
            os << (i + 1 < entries_.size() ? ",\n" : "\n");
        }
        os << "  ]\n}\n";
        return os.str();
    }

    /** Write the document; returns false (with a warning) on I/O error. */
    bool
    writeFile(const std::string &path) const
    {
        std::ofstream f(path);
        if (!f) {
            warn("cannot write benchmark JSON to '", path, "'");
            return false;
        }
        f << toJson();
        return bool(f);
    }

  private:
    Entry meta_{"meta"};
    std::deque<Entry> entries_; // deque: add() never invalidates entries
};

/** Everything a simulator-driven bench needs for one dataset. */
struct Prepared
{
    DatasetProfile profile; ///< published statistics
    SyntheticGraph synth;
    GcodOutcome outcome;    ///< structure-only pipeline result
    double scaleUsed = 1.0;

    /** Simulator input for baseline platforms (raw adjacency). */
    GraphInput
    rawInput() const
    {
        GraphInput in = makeGraphInput(synth.graph.adjacency());
        in.publishedNodes = profile.nodes;
        in.featureDensity = profile.featureDensity;
        return in;
    }

    /** Simulator input for the GCoD accelerator (processed adjacency). */
    GraphInput
    gcodInput() const
    {
        GraphInput in = makeGraphInput(outcome.finalGraph.adjacency(),
                                       outcome.workload);
        in.publishedNodes = profile.nodes;
        in.featureDensity = profile.featureDensity;
        return in;
    }

    /** GCoD input before Step 2/3 pruning (Tab. VI "w/o SP" row). */
    GraphInput
    gcodUnprunedInput(const Graph &reordered_holder) const
    {
        GraphInput in = makeGraphInput(reordered_holder.adjacency(),
                                       outcome.workloadAfterReorder);
        in.publishedNodes = profile.nodes;
        in.featureDensity = profile.featureDensity;
        return in;
    }

    bool large() const { return profile.nodes >= kLargeGraphNodes; }
};

/** Default benchmark scale per dataset (keeps every bench CI-fast). */
inline double
defaultScale(const std::string &dataset)
{
    static const std::map<std::string, double> scales = {
        {"Cora", 1.0},       {"CiteSeer", 1.0}, {"Pubmed", 1.0},
        {"NELL", 0.15},      {"Ogbn-ArXiv", 0.08}, {"Reddit", 0.02},
    };
    auto it = scales.find(dataset);
    return it == scales.end() ? 1.0 : it->second;
}

/**
 * Prepare a dataset: synthesize, run the structure-only GCoD pipeline.
 * @param scale 0 = the per-dataset default.
 */
inline Prepared
prepare(const std::string &dataset, double scale = 0.0,
        GcodOptions opts = {}, uint64_t seed = 42)
{
    Prepared p;
    p.profile = profileByName(dataset);
    p.scaleUsed = scale > 0.0 ? scale : defaultScale(dataset);
    Rng rng(seed);
    p.synth = synthesize(p.profile, p.scaleUsed, rng);
    p.outcome = runGcodStructureOnly(p.synth, opts);
    return p;
}

/**
 * The simulator input @p platform wants for @p p: platforms whose
 * descriptor consumes the GCoD workload get the processed adjacency,
 * everything else the raw one.
 */
inline GraphInput
inputFor(const std::string &platform, const Prepared &p)
{
    return platformConsumesWorkload(platform) ? p.gcodInput()
                                              : p.rawInput();
}

/** Model spec at the dataset's *published* dimensions (Tab. IV). */
inline ModelSpec
specFor(const std::string &model, const Prepared &p)
{
    return makeModelSpec(model, p.profile.features, p.profile.classes,
                         p.large());
}

/**
 * Shared bench main body: parse key=value args, print the reproduction
 * table(s) via @p body, then run registered google-benchmark timers.
 */
inline int
benchMain(int argc, char **argv, const std::function<void(Config &)> &body)
{
    Config cfg;
    // Split args: key=value pairs go to Config; the rest to benchmark.
    std::vector<char *> bench_args{argv[0]};
    for (int i = 1; i < argc; ++i) {
        std::string tok = argv[i];
        if (tok.find('=') != std::string::npos &&
            tok.rfind("--", 0) == std::string::npos) {
            cfg.set(tok.substr(0, tok.find('=')),
                    tok.substr(tok.find('=') + 1));
        } else {
            bench_args.push_back(argv[i]);
        }
    }
    // "threads=N" sizes the shared kernel pool for every bench.
    setThreadsFromConfig(cfg);
    body(cfg);
    int bench_argc = int(bench_args.size());
    benchmark::Initialize(&bench_argc, bench_args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace gcod::bench

#endif // GCOD_BENCH_COMMON_HPP
