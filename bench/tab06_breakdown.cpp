/**
 * @file
 * Reproduces paper Tab. VI: speedup breakdown of the GCoD accelerator —
 * the two-pronged architecture alone (reordered but unpruned workload),
 * plus sparsification (SP), plus 8-bit quantization — all as speedups
 * over PyG-CPU, with AWB-GCN for reference, GCN on five datasets.
 *
 * Expected shape (paper): the accelerator alone contributes ~2.3x over
 * AWB-GCN, sparsification another ~1.09x, quantization another ~2x.
 */
#include "bench_common.hpp"

using namespace gcod;
using namespace gcod::bench;

namespace {

void
printTable6(Config &cfg)
{
    std::vector<std::string> datasets = {"Cora", "CiteSeer", "Pubmed",
                                         "NELL", "Reddit"};
    double scale = cfg.getDouble("scale", 0.0);

    Table t("Tab. VI | Speedup over PyG-CPU, GCN");
    std::vector<std::string> header = {"Method"};
    for (const auto &d : datasets)
        header.push_back(d);
    t.header(header);

    std::map<std::string, Prepared> prep;
    std::map<std::string, Graph> reordered;
    std::map<std::string, double> cpu_lat;
    for (const auto &d : datasets) {
        prep.emplace(d, prepare(d, scale));
        const Prepared &p = prep.at(d);
        reordered.emplace(
            d, p.synth.graph.permuted(p.outcome.partitioning.perm));
        auto cpu = makeAccelerator("PyG-CPU");
        cpu_lat[d] =
            cpu->simulate(specFor("GCN", p), p.rawInput()).latencySeconds;
    }

    auto addRow = [&](const std::string &label, const std::string &platform,
                      bool pruned) {
        std::vector<std::string> row = {label};
        auto accel = makeAccelerator(platform);
        for (const auto &d : datasets) {
            const Prepared &p = prep.at(d);
            GraphInput in;
            if (platform == "AWB-GCN") {
                in = p.rawInput();
            } else if (pruned) {
                in = p.gcodInput();
            } else {
                in = p.gcodUnprunedInput(reordered.at(d));
            }
            DetailedResult r = accel->simulate(specFor("GCN", p), in);
            row.push_back(formatSpeedup(cpu_lat[d] / r.latencySeconds));
        }
        t.row(row);
    };

    addRow("AWB-GCN", "AWB-GCN", false);
    addRow("GCoD Accele.", "GCoD", false);
    addRow("GCoD Accele. w/ SP.", "GCoD", true);
    addRow("GCoD Accele. w/ SP. & Quant.", "GCoD(8-bit)", true);
    t.print(std::cout);
    std::cout << "\n";
}

void
BM_WorkloadBuildCora(benchmark::State &state)
{
    static Prepared p = prepare("Cora");
    for (auto _ : state)
        benchmark::DoNotOptimize(workloadOf(
            p.outcome.partitioning, p.outcome.finalGraph.adjacency()));
}
BENCHMARK(BM_WorkloadBuildCora);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printTable6);
}
