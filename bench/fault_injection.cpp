/**
 * @file
 * Fault-injection drill bench: the same mixed-tier traffic is served
 * twice — once fault-free (the baseline) and once under a deterministic
 * seeded fault plan injecting per-backend execution failures and latency
 * spikes — and the recovery machinery (bounded retries with exponential
 * backoff, circuit-breaker failover, deadline resolution) has to hold
 * three production promises, gated hard under check=1:
 *
 *   1. availability: >= 99% of Standard-tier requests complete despite a
 *      10% per-attempt backend failure rate,
 *   2. zero dropped in-flight requests: every submitted future resolves
 *      (completed, failed loudly, or timed out — never lost), and
 *   3. byte-identical results: the logits the faulted engine serves are
 *      memcmp-equal to the fault-free baseline's, and completed replies
 *      predict identically.
 *
 * A third phase drills the corrupt-artifact path: a store whose reads
 * are injected-corrupt must quarantine every file, rebuild from the
 * pipeline, republish, and still serve baseline-identical answers.
 *
 * Config overrides (key=value):
 *   requests=2000 workers=2 maxbatch=16 delay_us=500
 *   backends=GCoD,HyGCN,AWB-GCN fail_rate=0.1 slow_rate=0.05
 *   attempts=5 seed=7 scale=0 out=BENCH_fault.json check=0
 *
 * Results land in BENCH_fault.json (JsonEmitter) so the availability
 * trajectory is tracked across commits like the other benches; CI runs
 * with check=1.
 */
#include "bench_common.hpp"

#include <cstring>
#include <filesystem>

#include "serve/engine.hpp"
#include "sim/rng.hpp"

using namespace gcod;
using namespace gcod::bench;
using namespace gcod::serve;

namespace {

/** Mixed-tier assignment: 20% latency / 60% standard / 20% best-effort. */
SloTier
pickTier(double u)
{
    if (u < 0.2)
        return SloTier::Latency;
    return u < 0.8 ? SloTier::Standard : SloTier::BestEffort;
}

const std::vector<std::string> kDatasets = {"Cora", "CiteSeer", "Pubmed"};

/** One deterministic traffic script, replayed verbatim per phase. */
struct Script
{
    std::vector<InferenceRequest> requests;
    uint64_t submittedPerTier[kNumSloTiers] = {0, 0, 0};

    Script(int64_t n, uint64_t seed)
    {
        Rng rng(seed);
        requests.reserve(size_t(n));
        for (int64_t i = 0; i < n; ++i) {
            InferenceRequest req;
            req.dataset = kDatasets[size_t(rng.uniformInt(
                0, int64_t(kDatasets.size()) - 1))];
            req.node = NodeId(rng.uniformInt(0, 999));
            req.tier = pickTier(rng.uniformReal());
            ++submittedPerTier[size_t(req.tier)];
            requests.push_back(std::move(req));
        }
    }
};

/** What one serve phase produced, request-aligned with the script. */
struct PhaseResult
{
    std::vector<InferenceReply> replies;
    size_t dropped = 0; ///< futures not ready after drain(): must be 0
    double seconds = 0.0;
};

PhaseResult
servePhase(ServingEngine &engine, const Script &script)
{
    auto t0 = Clock::now();
    std::vector<std::future<InferenceReply>> futures;
    futures.reserve(script.requests.size());
    for (const InferenceRequest &req : script.requests)
        futures.push_back(engine.submit(InferenceRequest(req)));
    engine.drain();

    PhaseResult out;
    out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    out.replies.reserve(futures.size());
    for (auto &f : futures) {
        if (f.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
            ++out.dropped;
            out.replies.emplace_back(); // placeholder, never compared
            continue;
        }
        out.replies.push_back(f.get());
    }
    return out;
}

void
faultDrill(Config &cfg)
{
    ServeOptions opts;
    opts.workers = size_t(cfg.getInt("workers", 2));
    opts.artifactScale = cfg.getDouble("scale", 0.0);
    opts.batching.maxBatch = size_t(cfg.getInt("maxbatch", 16));
    opts.batching.maxDelay =
        std::chrono::microseconds(cfg.getInt("delay_us", 500));
    std::string backends = cfg.getString("backends", "GCoD,HyGCN,AWB-GCN");
    opts.backends.clear();
    for (size_t pos = 0; pos < backends.size();) {
        size_t next = backends.find(',', pos);
        if (next == std::string::npos)
            next = backends.size();
        if (next > pos)
            opts.backends.push_back(backends.substr(pos, next - pos));
        pos = next + 1;
    }
    opts.retry.maxAttempts = int(cfg.getInt("attempts", 5));

    const int64_t requests = cfg.getInt("requests", 2000);
    const uint64_t seed = uint64_t(cfg.getInt("seed", 7));
    const double failRate = cfg.getDouble("fail_rate", 0.1);
    const double slowRate = cfg.getDouble("slow_rate", 0.05);
    Script script(requests, seed);

    // ------------------------------------------------- phase 1: baseline
    ServingEngine baseline(opts);
    PhaseResult clean = servePhase(baseline, script);
    GCOD_ASSERT(clean.dropped == 0, "baseline dropped in-flight requests");

    // ------------------------------------------------- phase 2: injected
    ServeOptions drill = opts;
    drill.fault.seed = seed;
    drill.fault.backendFailRate = failRate;
    drill.fault.backendSlowRate = slowRate;
    ServingEngine engine(drill);
    PhaseResult faulted = servePhase(engine, script);

    ServerStats &stats = engine.stats();
    uint64_t mismatched = 0, compared = 0;
    for (size_t i = 0; i < script.requests.size(); ++i) {
        const InferenceReply &a = clean.replies[i];
        const InferenceReply &b = faulted.replies[i];
        // Predictions are an artifact+precision property, not a routing
        // property — but failover may legitimately land a request on a
        // backend of a different operand precision, so compare where the
        // executed precision matched.
        if (a.ok() && b.ok() && a.executedBits == b.executedBits) {
            ++compared;
            mismatched += a.prediction != b.prediction;
        }
    }

    // Byte-identity oracle: the logits each engine serves from, per
    // dataset, at the fp32 reference precision.
    bool logitsIdentical = true;
    for (const std::string &d : kDatasets) {
        ArtifactKey k = engine.keyFor(d, "GCN");
        auto a = baseline.peekLogits(k, 32);
        auto b = engine.peekLogits(k, 32);
        GCOD_ASSERT(a && b, "missing fp32 logits for ", d);
        logitsIdentical =
            logitsIdentical && a->sameShape(*b) &&
            std::memcmp(a->data().data(), b->data().data(),
                        a->data().size() * sizeof(float)) == 0;
    }

    double stdAvail =
        script.submittedPerTier[size_t(SloTier::Standard)] > 0
            ? double(stats.tierCompleted(SloTier::Standard)) /
                  double(script.submittedPerTier[size_t(SloTier::Standard)])
            : 1.0;
    double avail = double(stats.completed()) / double(requests);

    uint64_t trips = 0, backendFailures = 0;
    for (int i = 0; i < int(engine.router().numBackends()); ++i) {
        trips += engine.router().trips(i);
        backendFailures += engine.router().failures(i);
    }

    Table t("Fault drill | " + std::to_string(requests) + " requests, " +
            formatNumber(failRate * 100.0) + "% injected backend failure "
            "rate, " + std::to_string(opts.retry.maxAttempts) +
            " attempts");
    t.header({"Metric", "Baseline", "Injected"});
    t.row({"completed", std::to_string(baseline.stats().completed()),
           std::to_string(stats.completed())});
    t.row({"failed", std::to_string(baseline.stats().failed()),
           std::to_string(stats.failed())});
    t.row({"dropped in-flight", std::to_string(clean.dropped),
           std::to_string(faulted.dropped)});
    t.row({"retried", "0", std::to_string(stats.retried())});
    t.row({"failed over", "0", std::to_string(stats.failedOver())});
    t.row({"faults injected", "0",
           std::to_string(engine.faultPlan().injectedCount())});
    t.row({"breaker trips", "0", std::to_string(trips)});
    t.row({"availability", "1.0", formatNumber(avail)});
    t.row({"standard-tier availability", "1.0", formatNumber(stdAvail)});
    t.row({"logits byte-identical", "-",
           logitsIdentical ? "yes" : "NO"});
    t.print(std::cout);

    // --------------------------------------- phase 3: corrupt-store drill
    std::string storeDir =
        (std::filesystem::temp_directory_path() / "gcod_fault_bench_store")
            .string();
    std::filesystem::remove_all(storeDir);
    uint64_t quarantines = 0;
    bool storeOk = true;
    {
        ServeOptions warmOpts = opts;
        warmOpts.storeDir = storeDir;
        ServingEngine warm(warmOpts);
        std::vector<std::future<InferenceReply>> futs;
        for (const std::string &d : kDatasets)
            futs.push_back(warm.submit({0, d, "GCN", 0}));
        warm.drain();
        for (auto &f : futs)
            storeOk = storeOk && f.get().ok();

        ServeOptions corruptOpts = warmOpts;
        corruptOpts.fault.seed = seed;
        corruptOpts.fault.storeCorruptRate = 1.0;
        ServingEngine recover(corruptOpts);
        std::vector<std::future<InferenceReply>> futs2;
        for (const std::string &d : kDatasets)
            futs2.push_back(recover.submit({0, d, "GCN", 0}));
        recover.drain();
        for (auto &f : futs2)
            storeOk = storeOk && f.get().ok();
        quarantines = recover.stats().quarantined();
        for (const std::string &d : kDatasets) {
            ArtifactKey k = recover.keyFor(d, "GCN");
            auto a = baseline.peekLogits(k, 32);
            auto b = recover.peekLogits(k, 32);
            storeOk = storeOk && a && b && a->sameShape(*b) &&
                      std::memcmp(a->data().data(), b->data().data(),
                                  a->data().size() * sizeof(float)) == 0;
        }
    }
    std::filesystem::remove_all(storeDir);

    Table st("Fault drill | corrupt-store quarantine");
    st.header({"Metric", "Value"});
    st.row({"artifacts quarantined", std::to_string(quarantines)});
    st.row({"rebuilt + byte-identical", storeOk ? "yes" : "NO"});
    st.print(std::cout);

    // ------------------------------------------------------------- JSON
    JsonEmitter json;
    json.meta()
        .set("bench", "fault_injection")
        .set("requests", requests)
        .set("backends", backends)
        .set("fail_rate", failRate)
        .set("slow_rate", slowRate)
        .set("attempts", opts.retry.maxAttempts)
        .set("seed", int64_t(engine.faultPlan().seed()))
        .set("workers", int64_t(opts.workers));
    json.add("baseline")
        .set("completed", int64_t(baseline.stats().completed()))
        .set("serve_s", clean.seconds)
        .set("throughput_req_per_sec",
             double(baseline.stats().completed()) / clean.seconds);
    json.add("injected")
        .set("completed", int64_t(stats.completed()))
        .set("failed", int64_t(stats.failed()))
        .set("timed_out", int64_t(stats.timedOut()))
        .set("shed", int64_t(stats.shed()))
        .set("retried", int64_t(stats.retried()))
        .set("failed_over", int64_t(stats.failedOver()))
        .set("dropped_in_flight", int64_t(faulted.dropped))
        .set("faults_injected",
             int64_t(engine.faultPlan().injectedCount()))
        .set("backend_failures", int64_t(backendFailures))
        .set("breaker_trips", int64_t(trips))
        .set("availability", avail)
        .set("serve_s", faulted.seconds)
        .set("logits_identical", int64_t(logitsIdentical ? 1 : 0))
        .set("predictions_compared", int64_t(compared))
        .set("predictions_mismatched", int64_t(mismatched));
    for (SloTier tier :
         {SloTier::Latency, SloTier::Standard, SloTier::BestEffort}) {
        uint64_t submitted = script.submittedPerTier[size_t(tier)];
        json.add(std::string("tier_") + sloTierName(tier))
            .set("tier", sloTierName(tier))
            .set("submitted", int64_t(submitted))
            .set("completed", int64_t(stats.tierCompleted(tier)))
            .set("failed", int64_t(stats.tierFailed(tier)))
            .set("retried", int64_t(stats.tierRetried(tier)))
            .set("failed_over", int64_t(stats.tierFailedOver(tier)))
            .set("availability",
                 submitted > 0
                     ? double(stats.tierCompleted(tier)) / double(submitted)
                     : 1.0);
    }
    json.add("store_drill")
        .set("quarantined", int64_t(quarantines))
        .set("recovered_ok", int64_t(storeOk ? 1 : 0));
    json.writeFile(cfg.getString("out", "BENCH_fault.json"));

    // --------------------------------------------------------- CI gates
    if (cfg.getInt("check", 0) != 0) {
        GCOD_ASSERT(engine.faultPlan().injectedCount() > 0,
                    "fault drill injected nothing — the gate is vacuous");
        GCOD_ASSERT(faulted.dropped == 0, "injected run dropped ",
                    faulted.dropped, " in-flight requests");
        GCOD_ASSERT(stdAvail >= 0.99,
                    "standard-tier availability under faults must be >= "
                    "0.99 (got ", stdAvail, ")");
        GCOD_ASSERT(logitsIdentical,
                    "served logits diverged from the fault-free baseline");
        GCOD_ASSERT(mismatched == 0, "recovered replies predicted "
                    "differently than the fault-free baseline");
        GCOD_ASSERT(quarantines == uint64_t(kDatasets.size()),
                    "corrupt-store drill quarantined ", quarantines,
                    " of ", kDatasets.size(), " artifacts");
        GCOD_ASSERT(storeOk, "corrupt-store drill failed to recover "
                    "byte-identical artifacts");
    }
}

/** Microbenchmark: one 16-request burst through the faulted engine. */
void
BM_FaultedBurst16(benchmark::State &state)
{
    ServeOptions opts;
    opts.backends = {"GCoD", "HyGCN"};
    opts.workers = 2;
    opts.batching.policy = BatchPolicy::FixedSize;
    opts.batching.maxBatch = 16;
    opts.fault.seed = 7;
    opts.fault.backendFailRate = 0.1;
    ServingEngine engine(opts);
    engine.submit({0, "Cora", "GCN", 0});
    engine.drain(); // warm the artifact cache
    for (auto _ : state) {
        std::vector<std::future<InferenceReply>> futures;
        futures.reserve(16);
        for (int i = 0; i < 16; ++i)
            futures.push_back(engine.submit({0, "Cora", "GCN", 0}));
        engine.drain();
        for (auto &f : futures)
            benchmark::DoNotOptimize(f.get());
    }
}
BENCHMARK(BM_FaultedBurst16);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, faultDrill);
}
