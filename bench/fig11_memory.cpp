/**
 * @file
 * Reproduces paper Fig. 11: (a) peak off-chip bandwidth requirement of
 * GCoD and GCoD (8-bit) relative to HyGCN, and (b) off-chip data accesses
 * of GCoD normalized to HyGCN and AWB-GCN, for GCN across the datasets.
 *
 * Expected shape (paper): GCoD needs on average ~48% (and 8-bit ~26%) of
 * HyGCN's bandwidth, and fewer off-chip accesses than both baselines,
 * with Reddit relatively higher (resource-aware pipeline trades reuse for
 * on-chip storage).
 */
#include "bench_common.hpp"

using namespace gcod;
using namespace gcod::bench;

namespace {

void
printFigure11(Config &cfg)
{
    std::vector<std::string> datasets = {"Cora", "CiteSeer", "Pubmed",
                                         "NELL", "Reddit"};
    double scale = cfg.getDouble("scale", 0.0);

    Table a("Fig. 11(a) | Off-chip bandwidth requirement (GB/s)");
    a.header({"Dataset", "HyGCN", "GCoD", "GCoD(8-bit)", "GCoD/HyGCN",
              "8-bit/HyGCN"});
    Table b("Fig. 11(b) | Off-chip accesses normalized to GCoD = 1");
    b.header({"Dataset", "HyGCN", "AWB-GCN", "GCoD"});

    double ratio_sum = 0.0, ratio8_sum = 0.0;
    for (const auto &d : datasets) {
        Prepared p = prepare(d, scale);
        ModelSpec spec = specFor("GCN", p);
        auto hygcn = makeAccelerator("HyGCN");
        auto awb = makeAccelerator("AWB-GCN");
        auto gcod = makeAccelerator("GCoD");
        auto gcod8 = makeAccelerator("GCoD(8-bit)");
        DetailedResult rh = hygcn->simulate(spec, p.rawInput());
        DetailedResult ra = awb->simulate(spec, p.rawInput());
        DetailedResult rg = gcod->simulate(spec, p.gcodInput());
        DetailedResult rg8 = gcod8->simulate(spec, p.gcodInput());

        double rel = rg.requiredBandwidthGBs / rh.requiredBandwidthGBs;
        double rel8 = rg8.requiredBandwidthGBs / rh.requiredBandwidthGBs;
        ratio_sum += rel;
        ratio8_sum += rel8;
        a.row({d, formatNumber(rh.requiredBandwidthGBs),
               formatNumber(rg.requiredBandwidthGBs),
               formatNumber(rg8.requiredBandwidthGBs), formatPercent(rel),
               formatPercent(rel8)});
        b.row({d, formatNumber(rh.offChipAccesses / rg.offChipAccesses),
               formatNumber(ra.offChipAccesses / rg.offChipAccesses),
               "1.00"});
    }
    a.print(std::cout);
    std::cout << "average: GCoD needs "
              << formatPercent(ratio_sum / double(datasets.size()))
              << " and GCoD(8-bit) "
              << formatPercent(ratio8_sum / double(datasets.size()))
              << " of HyGCN's bandwidth (paper: ~48% / ~26%)\n\n";
    b.print(std::cout);
    std::cout << "\n";
}

void
BM_ProfileMatrixPubmed(benchmark::State &state)
{
    static Prepared p = prepare("Pubmed");
    for (auto _ : state)
        benchmark::DoNotOptimize(
            profileMatrix(p.synth.graph.adjacency()));
}
BENCHMARK(BM_ProfileMatrixPubmed);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printFigure11);
}
