/**
 * @file
 * Reproduces paper Fig. 12: GCoD's energy breakdown into computation,
 * on-chip and off-chip read/write, split by combination vs aggregation,
 * for the four GCN models on five datasets.
 *
 * Expected shape (paper): combination consumes most of the energy (GCoD
 * has tamed the aggregation bottleneck — on CPUs aggregation takes
 * 80-99%), and HBM energy stays reasonable as graphs grow.
 */
#include "bench_common.hpp"

using namespace gcod;
using namespace gcod::bench;

namespace {

void
printFigure12(Config &cfg)
{
    std::vector<std::string> models = {"GCN", "GraphSAGE", "GIN", "GAT"};
    std::vector<std::string> datasets = {"Cora", "CiteSeer", "Pubmed",
                                         "NELL", "Reddit"};
    double scale = cfg.getDouble("scale", 0.0);

    std::map<std::string, Prepared> prep;
    for (const auto &d : datasets)
        prep.emplace(d, prepare(d, scale));
    auto gcod = makeAccelerator("GCoD");

    for (const auto &model : models) {
        Table t("Fig. 12 | GCoD energy breakdown, " + model + " (%)");
        t.header({"Dataset", "Comb compute", "Comb on-chip",
                  "Comb off-chip", "Agg compute", "Agg on-chip",
                  "Agg off-chip", "Comb share", "Total (mJ)"});
        for (const auto &d : datasets) {
            const Prepared &p = prep.at(d);
            DetailedResult r =
                gcod->simulate(specFor(model, p), p.gcodInput());
            double total = r.totalEnergyJ();
            auto pct = [&](double v) { return formatPercent(v / total); };
            double comb_share = r.combinationEnergy.total() / total;
            t.row({d, pct(r.combinationEnergy.computeJ),
                   pct(r.combinationEnergy.onChipJ),
                   pct(r.combinationEnergy.offChipJ),
                   pct(r.aggregationEnergy.computeJ),
                   pct(r.aggregationEnergy.onChipJ),
                   pct(r.aggregationEnergy.offChipJ),
                   formatPercent(comb_share),
                   formatNumber(total * 1e3)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
}

void
BM_EnergyAttachment(benchmark::State &state)
{
    static Prepared p = prepare("Cora");
    auto gcod = makeAccelerator("GCoD");
    ModelSpec spec = specFor("GCN", p);
    GraphInput in = p.gcodInput();
    for (auto _ : state)
        benchmark::DoNotOptimize(gcod->simulate(spec, in).totalEnergyJ());
}
BENCHMARK(BM_EnergyAttachment);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printFigure12);
}
