/**
 * @file
 * Ablation of the sparser branch's query-based weight forwarding
 * (Sec. V-B): the paper reports that ~63% of the sparser branch's weight
 * accesses are served from the denser chunks' weight buffers. This bench
 * sweeps the weight-buffer size and reports (a) the closed-form residency
 * hit rate used by the latency model, (b) the empirical hit rate from the
 * event-driven two-branch schedule simulation, and (c) the off-chip
 * traffic saved — plus the traffic with forwarding disabled entirely.
 */
#include "accel/gcod_accel.hpp"
#include "accel/schedule.hpp"
#include "bench_common.hpp"

using namespace gcod;
using namespace gcod::bench;

namespace {

void
printForwardingAblation(Config &cfg)
{
    std::vector<std::string> datasets = {"Cora", "CiteSeer", "Pubmed",
                                         "NELL"};
    if (cfg.has("dataset"))
        datasets = {cfg.getString("dataset")};

    for (const auto &d : datasets) {
        GcodOptions gopts;
        gopts.reorder.numClasses = 2;
        gopts.reorder.numSubgraphs = 8;
        Prepared p = prepare(d, cfg.getDouble("scale", 0.0), gopts);
        const WorkloadDescriptor &wd = p.outcome.workload;
        double agg_width = p.large() ? 64.0 : 16.0;

        Table t("Weight forwarding ablation | " + d);
        t.header({"Weight buf (MB)", "Analytic hit", "Scheduled hit",
                  "Sparser weight traffic", "Saved vs no-forwarding"});

        // Off-chip weight traffic without forwarding: every nonempty
        // off-diagonal column fetches its XW row from HBM.
        double nonempty = 0.0;
        for (EdgeOffset cn : wd.offDiagColNnz)
            if (cn > 0)
                nonempty += 1.0;
        double no_fwd_bytes = nonempty * agg_width * 4.0;

        for (double buf_mb : {0.05, 0.25, 1.0, 12.6}) {
            double analytic = GcodAccelModel::weightForwardHitRate(
                wd, agg_width, 4.0, buf_mb * 1e6);
            ScheduleOptions sopts;
            sopts.aggWidth = agg_width;
            sopts.weightBufBytes = buf_mb * 1e6;
            ScheduleResult sched = simulateSchedule(wd, sopts);
            double traffic = (1.0 - analytic) * no_fwd_bytes;
            t.row({formatNumber(buf_mb), formatPercent(analytic),
                   formatPercent(sched.forwardHitRate),
                   formatBytes(traffic),
                   formatPercent(analytic)});
        }
        t.print(std::cout);
        std::cout << "no-forwarding baseline traffic: "
                  << formatBytes(no_fwd_bytes)
                  << " per layer (paper: ~63% of sparser-branch weights "
                     "are forwarded)\n\n";
    }
}

void
BM_ScheduleSimulationCora(benchmark::State &state)
{
    static Prepared p = prepare("Cora");
    ScheduleOptions opts;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            simulateSchedule(p.outcome.workload, opts));
}
BENCHMARK(BM_ScheduleSimulationCora);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printForwardingAblation);
}
