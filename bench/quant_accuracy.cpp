/**
 * @file
 * Accuracy and throughput of the integer execution path vs precision
 * (paper Tab. VII flavor): trains a GCN on the Cora stand-in, then runs
 * the forward pass through the mixed-precision integer kernels
 * (nn/quant_exec) at dense-branch bits ∈ {4, 8, 16} plus the fp32
 * reference, emitting accuracy drop, wall time, and GFLOP/s per
 * precision to BENCH_quant.json.
 *
 *   ./bench_quant_accuracy quick=1 check=1 out=BENCH_quant.json
 *
 * Keys: dataset (default Cora), scale (synthesis scale), epochs, reps
 * (best-of timing repetitions), quick (CI smoke sizes), out (JSON
 * path), check (nonzero: exit 1 unless the int8 accuracy drop is <= 2
 * percentage points vs fp32 — the release-bench gate).
 */
#include "bench_common.hpp"

#include <chrono>
#include <cstdio>

#include "nn/quant_exec.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

using namespace gcod;
using gcod::bench::JsonEmitter;

namespace {

/** Best-of-@p reps wall time of fn(), in seconds. */
template <typename Fn>
double
timeBest(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
        if (i == 0 || s < best)
            best = s;
    }
    return best;
}

/** MACs-based flop count of one recipe forward pass (x2 for mul+add). */
double
forwardFlops(const ForwardRecipe &m, int64_t nnz, int64_t nodes)
{
    double flops = 0.0;
    for (const LayerSpec &l : m.spec->layers) {
        double in = double(l.inDim);
        flops += 2.0 * double(nnz) * in;                      // aggregation
        double comb_in = m.concatSelf ? 2.0 * in : in;        // combination
        flops += 2.0 * double(nodes) * comb_in * double(l.outDim);
    }
    return flops;
}

int
runQuantAccuracy(const Config &cfg)
{
    bool quick = cfg.getBool("quick", false);
    std::string dataset = cfg.getString("dataset", "Cora");
    double scale = cfg.getDouble("scale", quick ? 0.5 : 1.0);
    int epochs = int(cfg.getInt("epochs", quick ? 40 : 120));
    int reps = int(cfg.getInt("reps", quick ? 2 : 3));
    bool check = cfg.getBool("check", false);
    std::string out = cfg.getString("out", "BENCH_quant.json");

    // Deterministic dataset + training run (fixed seeds throughout).
    const DatasetProfile &profile = profileByName(dataset);
    Rng rng(42);
    SyntheticGraph synth = synthesize(profile, scale, rng);
    Dataset ds = materialize(synth, rng);
    GraphContext ctx(ds.synth.graph);
    Rng mrng(7);
    auto model = makeModel("GCN", ds.featureDim(), ds.numClasses(),
                           profile.nodes >= kLargeGraphNodes, mrng);
    TrainOptions topts;
    topts.epochs = epochs;
    TrainReport report = train(*model, ctx, ds, topts);

    ForwardRecipe recipe = forwardRecipeFor(*model, ctx);
    const std::vector<int32_t> &degrees = ds.synth.graph.degrees();
    int64_t nnz = ctx.normalized().nnz();
    int64_t nodes = ds.synth.graph.numNodes();
    double flops = forwardFlops(recipe, nnz, nodes);

    JsonEmitter json;
    json.meta()
        .set("bench", "quant_accuracy")
        .set("dataset", dataset)
        .set("scale", scale)
        .set("nodes", nodes)
        .set("epochs", epochs)
        .set("threads", currentThreads())
        .set("trained_test_accuracy", report.testAccuracy);

    Matrix ref;
    double fp32_seconds =
        timeBest(reps, [&] { ref = referenceForward(recipe, ds.features); });
    double acc32 = accuracy(ref, ds.labels, ds.testMask);
    json.add("fp32")
        .set("bits", 32)
        .set("accuracy", acc32)
        .set("accuracy_drop_pct", 0.0)
        .set("seconds", fp32_seconds)
        .set("gflops", flops / std::max(fp32_seconds, 1e-12) / 1e9);
    std::printf("%-10s acc=%.4f  %8.3f ms  %7.2f GFLOP/s\n", "fp32",
                acc32, fp32_seconds * 1e3,
                flops / std::max(fp32_seconds, 1e-12) / 1e9);

    double drop8 = 0.0;
    for (int bits : {4, 8, 16}) {
        MixedPrecisionPolicy pol;
        pol.denseBits = bits;
        pol.sparseBits = std::min(2 * bits, 16);
        pol.operatorBits = pol.sparseBits;
        QuantizedGnn q = quantizeGnn(recipe, degrees, pol);
        Matrix logits;
        double seconds = timeBest(
            reps, [&] { logits = quantizedForwardMixed(q, ds.features); });
        double acc = accuracy(logits, ds.labels, ds.testMask);
        double drop_pct = (acc32 - acc) * 100.0;
        if (bits == 8)
            drop8 = drop_pct;
        json.add("int" + std::to_string(bits))
            .set("bits", bits)
            .set("dense_bits", pol.denseBits)
            .set("sparse_bits", pol.sparseBits)
            .set("accuracy", acc)
            .set("accuracy_drop_pct", drop_pct)
            .set("seconds", seconds)
            .set("gflops", flops / std::max(seconds, 1e-12) / 1e9)
            .set("logit_max_abs_error", Matrix::maxAbsDiff(ref, logits))
            .set("packed_bytes", q.packedBytes())
            .set("protected_fraction",
                 double(q.protectedCount) / double(nodes));
        std::printf("int%-7d acc=%.4f (drop %+.2f%%)  %8.3f ms  "
                    "%7.2f GFLOP/s\n",
                    bits, acc, drop_pct, seconds * 1e3,
                    flops / std::max(seconds, 1e-12) / 1e9);
    }

    if (json.writeFile(out))
        std::printf("\nwrote %s\n", out.c_str());

    if (check && drop8 > 2.0) {
        std::fprintf(stderr,
                     "FAIL: int8 accuracy drop %.2f%% exceeds the 2%% "
                     "release gate\n",
                     drop8);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    int rc = 0;
    gcod::bench::benchMain(argc, argv,
                           [&](Config &cfg) { rc = runQuantAccuracy(cfg); });
    return rc;
}
