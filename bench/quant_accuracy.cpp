/**
 * @file
 * Accuracy and throughput of the integer execution path vs precision
 * across the model zoo (paper Tab. VII flavor): trains each supported
 * family (GCN, GraphSAGE, GAT, GIN, ResGCN) on the Cora stand-in, then
 * runs its op-graph forward through the mixed-precision integer kernels
 * (nn/quant_exec) at dense-branch bits ∈ {4, 8, 16} plus the fp32
 * reference, emitting accuracy drop, wall time, and GFLOP/s per
 * (family, precision) to BENCH_quant.json. The attention rows chart the
 * paper's most interesting case — the low-bit accuracy cliff of
 * attention scores, which quantized execution sidesteps by keeping
 * AttentionScore ops in fp32 over dequantized projections.
 *
 *   ./bench_quant_accuracy quick=1 check=1 out=BENCH_quant.json
 *
 * Keys: dataset (default Cora), scale (synthesis scale), epochs, reps
 * (best-of timing repetitions), model (restrict to one family), quick
 * (CI smoke sizes), out (JSON path), check (nonzero: exit 1 unless
 * every family's fp32 logits are non-degenerate AND the int8 accuracy
 * drop is <= 2 percentage points for the non-attention families — the
 * release-bench zoo gate).
 */
#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <set>

#include "nn/quant_exec.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

using namespace gcod;
using gcod::bench::JsonEmitter;

namespace {

/** Best-of-@p reps wall time of fn(), in seconds. */
template <typename Fn>
double
timeBest(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
        if (i == 0 || s < best)
            best = s;
    }
    return best;
}

/** MACs-based flop count of one op-graph forward pass (x2 for mul+add). */
double
forwardFlops(const ForwardRecipe &r, int64_t nodes, int64_t input_cols)
{
    double flops = 0.0;
    int64_t cols = input_cols;
    for (size_t l = 0; l < r.layers.size(); ++l) {
        std::vector<int64_t> width = layerSlotWidths(r, l, cols);
        for (const OpStep &op : r.layers[l].ops) {
            switch (op.kind) {
            case OpKind::SpMM:
                flops += 2.0 * double(r.operators[size_t(op.opIndex)]->nnz()) *
                         double(width[size_t(op.in)]);
                break;
            case OpKind::GEMM:
                flops += 2.0 * double(nodes) *
                         double(width[size_t(op.in)]) *
                         double(r.weights[size_t(op.weight)]->cols());
                break;
            case OpKind::AttentionScore: {
                double edges =
                    double(r.operators[size_t(op.opIndex)]->nnz() + nodes);
                // Scores (src+dst dots), softmax, and the aggregation.
                flops += edges * (4.0 * double(op.heads) *
                                      double(op.headDim) +
                                  2.0 * double(width[size_t(op.out)]));
                break;
            }
            case OpKind::MaxAgg:
                flops += double(r.operators[size_t(op.opIndex)]->nnz()) *
                         double(width[size_t(op.in)]);
                break;
            default:
                // Row-local ops: one pass over the output rows.
                flops += double(nodes) * double(width[size_t(op.out)]);
                break;
            }
        }
        cols = width[size_t(r.layers[l].ops.back().out)];
    }
    return flops;
}

/** True when per-row argmax takes at least two distinct classes. */
bool
nonDegenerate(const Matrix &logits)
{
    std::set<int> seen;
    for (int64_t r = 0; r < logits.rows(); ++r) {
        const float *row = logits.row(r);
        int best = 0;
        for (int64_t c = 1; c < logits.cols(); ++c)
            if (row[c] > row[best])
                best = int(c);
        seen.insert(best);
        if (seen.size() >= 2)
            return true;
    }
    return false;
}

int
runQuantAccuracy(const Config &cfg)
{
    bool quick = cfg.getBool("quick", false);
    std::string dataset = cfg.getString("dataset", "Cora");
    double scale = cfg.getDouble("scale", quick ? 0.5 : 1.0);
    int epochs = int(cfg.getInt("epochs", quick ? 40 : 120));
    int reps = int(cfg.getInt("reps", quick ? 2 : 3));
    bool check = cfg.getBool("check", false);
    std::string out = cfg.getString("out", "BENCH_quant.json");

    std::vector<std::string> families = {"GCN", "GraphSAGE", "GAT", "GIN",
                                         "ResGCN"};
    if (cfg.has("model"))
        families = {cfg.getString("model")};

    // Deterministic dataset, shared across families (fixed seeds).
    const DatasetProfile &profile = profileByName(dataset);
    Rng rng(42);
    SyntheticGraph synth = synthesize(profile, scale, rng);
    Dataset ds = materialize(synth, rng);
    GraphContext ctx(ds.synth.graph);
    const std::vector<int32_t> &degrees = ds.synth.graph.degrees();
    int64_t nodes = ds.synth.graph.numNodes();

    JsonEmitter json;
    json.meta()
        .set("bench", "quant_accuracy")
        .set("dataset", dataset)
        .set("scale", scale)
        .set("nodes", nodes)
        .set("epochs", epochs)
        .set("threads", currentThreads());

    double protect = cfg.getDouble("protect", 0.1);

    bool gateFailed = false;
    for (const std::string &family : families) {
        int fam_epochs = epochs;
        Rng mrng(7);
        auto model = makeModel(family, ds.featureDim(), ds.numClasses(),
                               profile.nodes >= kLargeGraphNodes, mrng);
        TrainOptions topts;
        topts.epochs = fam_epochs;
        TrainReport report = train(*model, ctx, ds, topts);

        ForwardRecipe recipe = forwardRecipeFor(*model, ctx);
        double flops = forwardFlops(recipe, nodes, ds.featureDim());
        bool attention = model->spec().layers.front().agg ==
                         Aggregation::Attention;

        Matrix ref;
        double fp32_seconds = timeBest(
            reps, [&] { ref = referenceForward(recipe, ds.features); });
        double acc32 = accuracy(ref, ds.labels, ds.testMask);
        json.add(family + "_fp32")
            .set("model", family)
            .set("bits", 32)
            .set("trained_test_accuracy", report.testAccuracy)
            .set("accuracy", acc32)
            .set("accuracy_drop_pct", 0.0)
            .set("seconds", fp32_seconds)
            .set("gflops", flops / std::max(fp32_seconds, 1e-12) / 1e9);
        std::printf("%-10s %-6s acc=%.4f  %8.3f ms  %7.2f GFLOP/s\n",
                    family.c_str(), "fp32", acc32, fp32_seconds * 1e3,
                    flops / std::max(fp32_seconds, 1e-12) / 1e9);
        if (check && !nonDegenerate(ref)) {
            std::fprintf(stderr,
                         "FAIL: %s fp32 logits are degenerate (single "
                         "predicted class)\n",
                         family.c_str());
            gateFailed = true;
        }

        for (int bits : {4, 8, 16}) {
            MixedPrecisionPolicy pol;
            pol.denseBits = bits;
            pol.sparseBits = std::min(2 * bits, 16);
            pol.operatorBits = pol.sparseBits;
            pol.protectRatio = protect;
            QuantizedGnn q = quantizeGnn(recipe, degrees, pol);
            Matrix logits;
            double seconds = timeBest(reps, [&] {
                logits = quantizedForwardMixed(q, ds.features);
            });
            double acc = accuracy(logits, ds.labels, ds.testMask);
            double drop_pct = (acc32 - acc) * 100.0;
            json.add(family + "_int" + std::to_string(bits))
                .set("model", family)
                .set("bits", bits)
                .set("dense_bits", pol.denseBits)
                .set("sparse_bits", pol.sparseBits)
                .set("attention", attention ? 1 : 0)
                .set("accuracy", acc)
                .set("accuracy_drop_pct", drop_pct)
                .set("seconds", seconds)
                .set("gflops", flops / std::max(seconds, 1e-12) / 1e9)
                .set("logit_max_abs_error",
                     Matrix::maxAbsDiff(ref, logits))
                .set("packed_bytes", q.packedBytes())
                .set("protected_fraction",
                     double(q.protectedCount) / double(nodes));
            std::printf("%-10s int%-3d acc=%.4f (drop %+.2f%%)  %8.3f ms"
                        "  %7.2f GFLOP/s\n",
                        family.c_str(), bits, acc, drop_pct,
                        seconds * 1e3,
                        flops / std::max(seconds, 1e-12) / 1e9);
            if (check && bits == 8) {
                if (!nonDegenerate(logits)) {
                    std::fprintf(stderr,
                                 "FAIL: %s int8 logits are degenerate\n",
                                 family.c_str());
                    gateFailed = true;
                }
                // Attention families are reported but not gated: the
                // low-bit cliff of attention scores is the measurement,
                // not a regression.
                if (!attention && drop_pct > 2.0) {
                    std::fprintf(stderr,
                                 "FAIL: %s int8 accuracy drop %.2f%% "
                                 "exceeds the 2%% release gate\n",
                                 family.c_str(), drop_pct);
                    gateFailed = true;
                }
            }
        }
    }

    if (json.writeFile(out))
        std::printf("\nwrote %s\n", out.c_str());

    return gateFailed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    int rc = 0;
    gcod::bench::benchMain(argc, argv,
                           [&](Config &cfg) { rc = runQuantAccuracy(cfg); });
    return rc;
}
