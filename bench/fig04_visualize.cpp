/**
 * @file
 * Reproduces paper Fig. 4: adjacency matrices of the citation graphs
 * before and after GCoD training, rendered as ASCII density plots (PGM
 * images are written next to the binary), with the per-dataset latency
 * improvement over HyGCN.
 *
 * Expected shape (paper): after GCoD, nonzeros polarize into dense
 * diagonal subgraph blocks separated by class (green) and group (red)
 * boundaries, with visible pruned vacancies; latency drops 3.2x-9.2x vs
 * HyGCN.
 */
#include "bench_common.hpp"
#include "graph/viz.hpp"

using namespace gcod;
using namespace gcod::bench;

namespace {

void
printFigure4(Config &cfg)
{
    std::vector<std::string> datasets = citationDatasetNames();
    if (cfg.has("dataset"))
        datasets = {cfg.getString("dataset")};
    int cells = int(cfg.getInt("cells", 48));

    for (const auto &d : datasets) {
        GcodOptions opts;
        opts.reorder.numClasses = 4;
        opts.reorder.numSubgraphs = 16;
        Prepared p = prepare(d, cfg.getDouble("scale", 0.0), opts);

        ModelSpec spec = specFor("GCN", p);
        auto hygcn = makeAccelerator("HyGCN");
        auto gcod = makeAccelerator("GCoD");
        double lat_h =
            hygcn->simulate(spec, p.rawInput()).latencySeconds;
        double lat_g = gcod->simulate(spec, p.gcodInput()).latencySeconds;

        std::cout << "== Fig. 4 | " << d << " ==\n";
        std::cout << "before GCoD (original node order, "
                  << p.synth.graph.numEdges() << " edges):\n";
        std::cout << asciiDensity(p.synth.graph.adjacency(), cells);
        std::cout << "\nafter GCoD (reordered + polarized + pruned, "
                  << p.outcome.finalGraph.numEdges() << " edges; | and - "
                  << "mark class/group boundaries):\n";
        std::cout << asciiDensity(p.outcome.finalGraph.adjacency(), cells,
                                  p.outcome.partitioning.classBoundaries);
        std::cout << "\npolarization loss "
                  << formatNumber(p.outcome.polaBefore) << " -> "
                  << formatNumber(p.outcome.polaAfter)
                  << ", GCoD latency vs HyGCN: "
                  << formatSpeedup(lat_h / lat_g)
                  << " (paper: 3.2x-9.2x on the citation graphs)\n";

        writePgm(p.synth.graph.adjacency(), 256, "fig04_" + d + "_before.pgm");
        writePgm(p.outcome.finalGraph.adjacency(), 256,
                 "fig04_" + d + "_after.pgm");
        std::cout << "(PGM images: fig04_" << d << "_{before,after}.pgm)\n\n";
    }
}

void
BM_AsciiDensityCora(benchmark::State &state)
{
    static Prepared p = prepare("Cora");
    for (auto _ : state)
        benchmark::DoNotOptimize(
            asciiDensity(p.outcome.finalGraph.adjacency(), 48));
}
BENCHMARK(BM_AsciiDensityCora);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printFigure4);
}
