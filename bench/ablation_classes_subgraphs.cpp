/**
 * @file
 * Reproduces the Sec. VI-C hyper-parameter ablation: GCoD's speedup over
 * AWB-GCN and off-chip bandwidth reduction across the number of classes
 * C in {1,2,3,4} and subgraphs S in {8,12,16,20}, GCN on the citation
 * graphs.
 *
 * Expected shape (paper): 1.8x-2.8x speedup over AWB-GCN and 26%-53%
 * bandwidth reduction across the whole sweep — i.e. robust to C and S.
 */
#include "bench_common.hpp"

using namespace gcod;
using namespace gcod::bench;

namespace {

void
printAblation(Config &cfg)
{
    std::vector<int> classes = {1, 2, 3, 4};
    std::vector<int> subgraphs = {8, 12, 16, 20};
    std::vector<std::string> datasets = citationDatasetNames();
    if (cfg.has("dataset"))
        datasets = {cfg.getString("dataset")};

    double min_speedup = 1e30, max_speedup = 0.0;
    double min_bw_red = 1.0, max_bw_red = 0.0;

    for (const auto &d : datasets) {
        Table t("Ablation | GCoD vs AWB-GCN across C and S, GCN on " + d);
        std::vector<std::string> header = {"C \\ S"};
        for (int s : subgraphs)
            header.push_back("S=" + std::to_string(s));
        t.header(header);

        for (int c : classes) {
            std::vector<std::string> row = {"C=" + std::to_string(c)};
            for (int s : subgraphs) {
                GcodOptions opts;
                opts.reorder.numClasses = c;
                opts.reorder.numSubgraphs = std::max(s, c);
                Prepared p = prepare(d, 0.0, opts);
                ModelSpec spec = specFor("GCN", p);

                auto awb = makeAccelerator("AWB-GCN");
                auto hygcn = makeAccelerator("HyGCN");
                auto gcod = makeAccelerator("GCoD");
                DetailedResult ra = awb->simulate(spec, p.rawInput());
                DetailedResult rh = hygcn->simulate(spec, p.rawInput());
                DetailedResult rg = gcod->simulate(spec, p.gcodInput());
                double speedup = ra.latencySeconds / rg.latencySeconds;
                // Bandwidth reduction vs the gathered baseline (HyGCN),
                // consistent with Fig. 11(a)'s comparison.
                double bw_red = 1.0 - rg.requiredBandwidthGBs /
                                          rh.requiredBandwidthGBs;
                min_speedup = std::min(min_speedup, speedup);
                max_speedup = std::max(max_speedup, speedup);
                min_bw_red = std::min(min_bw_red, bw_red);
                max_bw_red = std::max(max_bw_red, bw_red);
                row.push_back(formatSpeedup(speedup) + " / " +
                              formatPercent(bw_red));
            }
            t.row(row);
        }
        t.print(std::cout);
        std::cout << "(cell = speedup over AWB-GCN / bandwidth reduction)\n\n";
    }
    std::cout << "sweep range: " << formatSpeedup(min_speedup) << " - "
              << formatSpeedup(max_speedup) << " speedup, "
              << formatPercent(min_bw_red) << " - "
              << formatPercent(max_bw_red)
              << " bandwidth reduction (paper: 1.8x-2.8x, 26%-53%)\n";
}

void
BM_ReorderCora(benchmark::State &state)
{
    Rng rng(3);
    static SyntheticGraph synth =
        synthesize(profileByName("Cora"), 1.0, rng);
    ReorderOptions opts;
    opts.numClasses = 4;
    opts.numSubgraphs = 16;
    for (auto _ : state)
        benchmark::DoNotOptimize(reorderGraph(synth.graph, opts));
}
BENCHMARK(BM_ReorderCora);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printAblation);
}
