/**
 * @file
 * Streamed-update bench: measures what src/dyn/ + applyUpdate() buy
 * over the hot-swap path they ride on. Three phases:
 *
 *   1. Cold build + full-rebuild baseline — publishArtifact() timed
 *      through the entire pipeline (synthesis, GCoD, shard plan, quant
 *      packs, forward). This is the cost an update stream would pay
 *      per batch WITHOUT incremental recompute.
 *   2. Incremental update stream — applyUpdate() over small edge-toggle
 *      deltas (default 8 edges, well under 1% of the graph). Reports
 *      mean/max update latency, the dirty-row fraction per layer pass
 *      (staleness: how much of the epoch had to be recomputed), and the
 *      speedup over the full-rebuild baseline.
 *   3. Concurrent serving — a writer thread streams updates while
 *      open-loop requests are submitted; the epoch hot-swap contract
 *      means zero requests may drop or fail, and every retired epoch
 *      must reclaim once the stream drains.
 *
 * Config overrides (key=value):
 *   dataset=Cora updates=24 batch_edges=8 requests=160 workers=2
 *   full_rebuilds=2 scale=0 seed=42 check=0 out=BENCH_stream.json
 *
 * check=1 gates the run on the tentpole acceptance criteria:
 * incremental update >= 5x faster than a full rebuild for these small
 * deltas, and zero dropped requests during concurrent swaps.
 */
#include "bench_common.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "dyn/delta.hpp"
#include "serve/engine.hpp"
#include "sim/rng.hpp"

using namespace gcod;
using namespace gcod::bench;
using namespace gcod::serve;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Random edge toggles among the resident graph's nodes. */
dyn::GraphDelta
toggleDelta(const Graph &g, int count, uint64_t seed)
{
    Rng rng(seed);
    dyn::GraphDelta d;
    NodeId n = g.numNodes();
    for (int i = 0; i < count; ++i) {
        NodeId u = NodeId(rng.uniformInt(0, n - 1));
        NodeId v = NodeId(rng.uniformInt(0, n - 1));
        if (u == v)
            continue;
        if (g.adjacency().at(u, v) != 0.0f)
            d.removeEdge(u, v);
        else
            d.insertEdge(u, v);
    }
    return d;
}

void
streamUpdates(Config &cfg)
{
    const std::string dataset = cfg.getString("dataset", "Cora");
    const int updates = int(cfg.getInt("updates", 24));
    const int batchEdges = int(cfg.getInt("batch_edges", 8));
    const int requests = int(cfg.getInt("requests", 160));
    const int fullRebuilds = int(cfg.getInt("full_rebuilds", 2));
    const int check = int(cfg.getInt("check", 0));

    ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = size_t(cfg.getInt("workers", 2));
    opts.artifactScale = cfg.getDouble("scale", 0.0);
    opts.artifactSeed = uint64_t(cfg.getInt("seed", 42));
    ServingEngine engine(opts);
    ArtifactKey key = engine.keyFor(dataset, "GCN");

    // ---- Phase 1: cold build + full-rebuild baseline -----------------
    Clock::time_point t0 = Clock::now();
    engine.applyUpdate(key, dyn::GraphDelta{}); // noop delta: builds only
    double coldBuildS = secondsSince(t0);

    auto bundle0 = engine.cache().peek(key);
    GCOD_ASSERT(bundle0 != nullptr, "cold build left no resident bundle");
    const EdgeOffset edges0 = bundle0->synth.graph.numEdges();
    const NodeId nodes0 = bundle0->synth.graph.numNodes();
    bundle0.reset(); // holding the epoch would block its reclaim below
    const double deltaEdgeFraction =
        edges0 ? double(batchEdges) / double(edges0) : 0.0;

    double fullRebuildS = 0.0;
    for (int i = 0; i < fullRebuilds; ++i) {
        t0 = Clock::now();
        engine.publishArtifact(key);
        fullRebuildS += secondsSince(t0);
    }
    fullRebuildS /= std::max(1, fullRebuilds);

    // ---- Phase 2: incremental update stream --------------------------
    // First update after a full publish pays the from-scratch forward
    // seeding; keep it out of the steady-state timing.
    {
        auto bundle = engine.cache().peek(key);
        engine.applyUpdate(key,
                           toggleDelta(bundle->synth.graph, batchEdges, 1));
    }

    double sumS = 0.0, maxS = 0.0, sumDirtyFraction = 0.0;
    size_t sumRecomputed = 0, applied = 0;
    uint64_t lastDynEpoch = 0;
    for (int i = 0; i < updates; ++i) {
        auto bundle = engine.cache().peek(key);
        dyn::GraphDelta d = toggleDelta(bundle->synth.graph, batchEdges,
                                        uint64_t(1000 + i));
        ServingEngine::UpdateResult r = engine.applyUpdate(key, d);
        if (r.noop)
            continue;
        ++applied;
        sumS += r.seconds;
        maxS = std::max(maxS, r.seconds);
        sumDirtyFraction += double(r.dirtyRows) / double(nodes0);
        sumRecomputed += r.recomputedRows;
        lastDynEpoch = r.dynEpoch;
    }
    GCOD_ASSERT(applied > 0, "update stream applied no deltas");
    const double meanUpdateS = sumS / double(applied);
    const double speedup = meanUpdateS > 0.0 ? fullRebuildS / meanUpdateS
                                             : 0.0;
    const double meanDirtyFraction = sumDirtyFraction / double(applied);

    // ---- Phase 3: concurrent serving under a live update stream ------
    std::atomic<bool> stop{false};
    std::atomic<int> swaps{0};
    std::thread writer([&] {
        uint64_t seed = 5000;
        while (!stop.load()) {
            auto bundle = engine.cache().peek(key);
            if (bundle != nullptr) {
                auto r = engine.applyUpdate(
                    key, toggleDelta(bundle->synth.graph, batchEdges,
                                     seed++));
                if (!r.noop)
                    swaps.fetch_add(1);
            }
        }
    });

    // Pace the submissions so the serve window genuinely overlaps
    // several epoch swaps instead of finishing between two of them.
    t0 = Clock::now();
    std::vector<std::future<InferenceReply>> futures;
    futures.reserve(size_t(requests));
    for (int i = 0; i < requests; ++i) {
        futures.push_back(engine.submit({0, dataset, "GCN", 0}));
        if (i % 16 == 15)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    engine.drain();
    double serveS = secondsSince(t0);
    stop.store(true);
    writer.join();

    size_t ok = 0;
    for (auto &f : futures)
        ok += f.get().ok();
    const size_t dropped =
        size_t(requests) - ok + engine.stats().failed() +
        engine.stats().shed();

    engine.drain();
    size_t reclaimed = engine.reclaimRetiredArtifacts();
    size_t retiredLeft = engine.cache().retiredCount();
    engine.shutdown();

    // ---- report ------------------------------------------------------
    Table t("Streamed updates | incremental recompute vs full rebuild (" +
            dataset + ")");
    t.header({"metric", "value"});
    t.row({"graph nodes / edges", std::to_string(nodes0) + " / " +
                                      std::to_string(edges0)});
    t.row({"delta size (edges)", std::to_string(batchEdges) + " (" +
                                     formatPercent(deltaEdgeFraction) +
                                     " of edges)"});
    t.row({"cold build", formatNumber(coldBuildS * 1e3) + " ms"});
    t.row({"full rebuild (mean)", formatNumber(fullRebuildS * 1e3) +
                                      " ms"});
    t.row({"incremental update (mean)", formatNumber(meanUpdateS * 1e3) +
                                            " ms"});
    t.row({"incremental update (max)", formatNumber(maxS * 1e3) + " ms"});
    t.row({"speedup vs full rebuild", formatSpeedup(speedup)});
    t.row({"staleness (mean dirty rows)",
           formatPercent(meanDirtyFraction)});
    t.row({"dyn epochs stacked", std::to_string(lastDynEpoch)});
    t.print(std::cout);

    Table c("Streamed updates | serving during a live update stream");
    c.header({"metric", "value"});
    c.row({"requests", std::to_string(requests)});
    c.row({"completed ok", std::to_string(ok)});
    c.row({"dropped (failed+shed)", std::to_string(dropped)});
    c.row({"epoch swaps during window", std::to_string(swaps.load())});
    c.row({"serve window", formatNumber(serveS * 1e3) + " ms"});
    c.row({"throughput", formatNumber(serveS > 0.0 ? double(ok) / serveS
                                                   : 0.0) +
                             " req/s"});
    c.row({"retired epochs reclaimed", std::to_string(reclaimed)});
    c.row({"retired epochs leaked", std::to_string(retiredLeft)});
    c.print(std::cout);

    JsonEmitter json;
    json.meta()
        .set("bench", "stream_updates")
        .set("dataset", dataset)
        .set("threads", currentThreads())
        .set("nodes", int64_t(nodes0))
        .set("edges", int64_t(edges0));
    json.add("full_rebuild")
        .set("cold_build_s", coldBuildS)
        .set("rebuild_s", fullRebuildS)
        .set("rebuilds_timed", fullRebuilds);
    json.add("incremental")
        .set("updates", int64_t(applied))
        .set("dyn_epoch", int64_t(lastDynEpoch))
        .set("batch_edges", batchEdges)
        .set("delta_edge_fraction", deltaEdgeFraction)
        .set("mean_update_s", meanUpdateS)
        .set("max_update_s", maxS)
        .set("speedup_vs_full_rebuild", speedup)
        .set("mean_dirty_row_fraction", meanDirtyFraction)
        .set("mean_recomputed_rows",
             double(sumRecomputed) / double(applied));
    json.add("concurrent_serving")
        .set("requests", requests)
        .set("completed_ok", int64_t(ok))
        .set("dropped", int64_t(dropped))
        .set("swaps", swaps.load())
        .set("serve_s", serveS)
        .set("throughput_rps", serveS > 0.0 ? double(ok) / serveS : 0.0)
        .set("retired_reclaimed", int64_t(reclaimed))
        .set("retired_leaked", int64_t(retiredLeft));
    json.writeFile(cfg.getString("out", "BENCH_stream.json"));

    if (check != 0) {
        GCOD_ASSERT(deltaEdgeFraction <= 0.01,
                    "gate requires deltas touching <= 1% of edges; got ",
                    deltaEdgeFraction * 100.0, "% — lower batch_edges");
        GCOD_ASSERT(speedup >= 5.0,
                    "incremental update must be >= 5x faster than a full "
                    "artifact rebuild (got ", speedup, "x)");
        GCOD_ASSERT(dropped == 0,
                    "requests dropped during concurrent epoch swaps: ",
                    dropped);
        GCOD_ASSERT(retiredLeft == 0,
                    "retired epochs leaked after drain: ", retiredLeft);
    }
}

/** Microbenchmark: one small-delta applyUpdate() against a warm engine. */
void
BM_ApplyUpdateSmallDelta(benchmark::State &state)
{
    ServeOptions opts;
    opts.backends = {"GCoD"};
    opts.workers = 1;
    ServingEngine engine(opts);
    ArtifactKey key = engine.keyFor("Cora", "GCN");
    engine.applyUpdate(key, dyn::GraphDelta{}); // warm the artifact
    uint64_t seed = 1;
    for (auto _ : state) {
        auto bundle = engine.cache().peek(key);
        benchmark::DoNotOptimize(engine.applyUpdate(
            key, toggleDelta(bundle->synth.graph, 4, seed++)));
    }
    engine.reclaimRetiredArtifacts();
}
BENCHMARK(BM_ApplyUpdateSmallDelta);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, streamUpdates);
}
