/**
 * @file
 * Ablation of Step 3's patch threshold eta (Sec. IV-B1): the paper uses
 * eta in [10, 30] to balance structural sparsity (5-15%, more skippable
 * columns) against accuracy. This bench sweeps eta on the citation
 * graphs and reports the removed edge fraction, the off-diagonal empty-
 * column fraction the sparser branch can skip, and the resulting GCoD
 * latency — the design-choice ablation DESIGN.md calls out.
 */
#include "bench_common.hpp"

using namespace gcod;
using namespace gcod::bench;

namespace {

void
printStructuralAblation(Config &cfg)
{
    std::vector<std::string> datasets = citationDatasetNames();
    if (cfg.has("dataset"))
        datasets = {cfg.getString("dataset")};

    for (const auto &d : datasets) {
        Table t("Structural sparsification sweep | GCN on " + d);
        t.header({"eta", "Edges removed", "Empty off-diag cols",
                  "GCoD latency (us)", "Off-chip (MiB)"});
        for (EdgeOffset eta : {0, 5, 10, 20, 30, 60}) {
            GcodOptions opts;
            opts.structural.eta = eta;
            Prepared p = prepare(d, cfg.getDouble("scale", 0.0), opts);
            ModelSpec spec = specFor("GCN", p);
            auto gcod = makeAccelerator("GCoD");
            DetailedResult r = gcod->simulate(spec, p.gcodInput());
            t.row({formatNumber(double(eta)),
                   formatPercent(p.outcome.step3PruneRatio),
                   formatPercent(
                       p.outcome.workload.offDiagEmptyColFraction),
                   formatNumber(r.latencySeconds * 1e6),
                   formatNumber(r.offChipBytes() / 1048576.0)});
        }
        t.print(std::cout);
        std::cout << "(paper: eta in [10, 30] yields 5-15% structural "
                     "sparsity without accuracy loss)\n\n";
    }
}

void
BM_StructuralSparsifyCora(benchmark::State &state)
{
    Rng rng(2);
    static SyntheticGraph synth =
        synthesize(profileByName("Cora"), 1.0, rng);
    StructuralOptions opts;
    opts.patchSize = 128;
    opts.eta = 10;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            structuralSparsify(synth.graph.adjacency(), opts));
}
BENCHMARK(BM_StructuralSparsifyCora);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printStructuralAblation);
}
