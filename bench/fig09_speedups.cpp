/**
 * @file
 * Reproduces paper Fig. 9: normalized inference speedups (vs PyG-CPU) of
 * nine baselines plus GCoD and GCoD (8-bit), for GCN / GIN / GAT /
 * GraphSAGE on the three citation graphs (Cora, CiteSeer, Pubmed).
 *
 * Expected shape (paper): GCoD beats HyGCN by ~7.8x and AWB-GCN by ~2.5x
 * on average; frameworks trail dedicated accelerators by orders of
 * magnitude; GCoD (8-bit) adds ~2x on top of GCoD.
 */
#include "bench_common.hpp"

using namespace gcod;
using namespace gcod::bench;

namespace {

void
printFigure9(Config &cfg)
{
    std::vector<std::string> models = {"GCN", "GIN", "GAT", "GraphSAGE"};
    std::vector<std::string> datasets = citationDatasetNames();
    double scale = cfg.getDouble("scale", 0.0);

    std::map<std::string, Prepared> prep;
    for (const auto &d : datasets)
        prep.emplace(d, prepare(d, scale));

    for (const auto &model : models) {
        Table t("Fig. 9 | " + model +
                " inference speedups over PyG-CPU (x)");
        std::vector<std::string> header = {"Platform"};
        for (const auto &d : datasets)
            header.push_back(d);
        t.header(header);

        std::map<std::string, double> cpu_latency;
        for (const auto &platform : allPlatformNames()) {
            auto accel = makeAccelerator(platform);
            std::vector<std::string> row = {platform};
            for (const auto &d : datasets) {
                const Prepared &p = prep.at(d);
                GraphInput in = inputFor(platform, p);
                DetailedResult res = accel->simulate(specFor(model, p), in);
                if (platform == "PyG-CPU") {
                    cpu_latency[d] = res.latencySeconds;
                    row.push_back("1.0 (" +
                                  formatNumber(res.latencySeconds * 1e3) +
                                  " ms)");
                } else {
                    row.push_back(formatSpeedup(cpu_latency[d] /
                                                res.latencySeconds));
                }
            }
            t.row(row);
        }
        t.print(std::cout);
        std::cout << "\n";
    }
}

/** Microbenchmark: one full-platform sweep simulation on Cora/GCN. */
void
BM_SimulateAllPlatformsCora(benchmark::State &state)
{
    static Prepared p = prepare("Cora");
    ModelSpec spec = specFor("GCN", p);
    GraphInput raw = p.rawInput();
    GraphInput proc = p.gcodInput();
    for (auto _ : state) {
        for (const auto &name : allPlatformNames()) {
            auto accel = makeAccelerator(name);
            bool wants_workload = platformConsumesWorkload(name);
            benchmark::DoNotOptimize(
                accel->simulate(spec, wants_workload ? proc : raw));
        }
    }
}
BENCHMARK(BM_SimulateAllPlatformsCora);

} // namespace

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, printFigure9);
}
